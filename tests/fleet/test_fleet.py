"""Tests for the fleet calibration subsystem (registry, batched calibrator, sharding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import EdgeDeployment, QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.eval.parallel import WorkerError
from repro.fleet import Fleet, FleetCalibrator, run_fleet_stream
from repro.models import build_model

TINY_TS = SyntheticTimeSeriesConfig(
    num_classes=3, num_domains=2, channels=3, length=16,
    train_per_class=8, val_per_class=1, test_per_class=3,
)


@pytest.fixture(scope="module")
def packaged():
    """Dataset + one server-side packaged deployment (model, BF net, QCore)."""
    data = make_dsa_surrogate(seed=0, config=TINY_TS)
    model = build_model(
        "InceptionTime", data.input_shape, data.num_classes,
        rng=np.random.default_rng(0),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=12, train_epochs=3, calibration_epochs=4,
        edge_calibration_epochs=2, seed=0,
    )
    framework.fit(model, data[data.domain_names[0]].train)
    deployment = framework.deploy(bits=4)
    return data, framework, deployment


def _pools(data, device_ids):
    """Deterministic, device-specific calibration pools from the target domain."""
    target = data[data.domain_names[1]].train
    return {
        device_id: target.subset(np.arange(k * 6, k * 6 + 12) % len(target))
        for k, device_id in enumerate(device_ids)
    }


def _batches(data, device_ids, step=0):
    target = data[data.domain_names[1]].train
    return {
        device_id: target.subset(
            np.arange(step * 5 + k * 3, step * 5 + k * 3 + 9) % len(target)
        )
        for k, device_id in enumerate(device_ids)
    }


class TestFleetRegistry:
    def test_register_and_order(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet()
        fleet.register("b", deployment.clone())
        fleet.register("a", deployment.clone())
        assert fleet.ids == ["b", "a"]
        assert len(fleet) == 2
        assert "a" in fleet and "c" not in fleet
        assert isinstance(fleet.get("a"), EdgeDeployment)

    def test_register_rejects_duplicates_and_bad_input(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet({"a": deployment.clone()})
        with pytest.raises(ValueError, match="already registered"):
            fleet.register("a", deployment.clone())
        with pytest.raises(ValueError, match="non-empty"):
            fleet.register("", deployment.clone())
        with pytest.raises(TypeError):
            fleet.register("b", object())

    def test_replicate_shares_network_but_not_state(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 3, seed=0)
        assert len(fleet) == 3
        devices = fleet.devices()
        assert all(dev.bitflip is deployment.bitflip for dev in devices)
        assert all(
            dev.calibrator.normalizer is deployment.calibrator.normalizer
            for dev in devices
        )
        assert all(dev.qmodel is not deployment.qmodel for dev in devices)
        # Clones start bit-identical to the packaged model.
        digests = set(fleet.codes_digests().values())
        assert digests == {deployment.qmodel.codes_digest()}

    def test_replicate_rejects_non_positive_count(self, packaged):
        _, _, deployment = packaged
        with pytest.raises(ValueError):
            Fleet.replicate(deployment, 0)

    def test_shard_partitions_in_order(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 5, seed=0)
        shards = fleet.shard(2)
        assert [i for shard in shards for i in shard.ids] == fleet.ids
        assert {len(shard) for shard in shards} <= {2, 3}
        # Shards share device objects with the parent fleet.
        assert shards[0].get(shards[0].ids[0]) is fleet.get(fleet.ids[0])
        # More shards than devices: one device per shard, none empty.
        assert [len(s) for s in fleet.shard(9)] == [1] * 5
        with pytest.raises(ValueError):
            fleet.shard(0)

    def test_subset_unknown_device(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        with pytest.raises(ValueError, match=r"unknown device ids \['nope'\]"):
            fleet.subset(["device-0", "nope"])

    def test_subset_lists_every_unknown_id(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        with pytest.raises(ValueError, match=r"'ghost-a'.*'ghost-b'"):
            fleet.subset(["ghost-a", "device-1", "ghost-b"])

    def test_subset_rejects_duplicates(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 3, seed=0)
        with pytest.raises(ValueError, match="duplicate device ids"):
            fleet.subset(["device-0", "device-1", "device-0"])

    def test_num_parameters_and_summary(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        assert fleet.num_parameters() == 2 * deployment.qmodel.num_parameters()
        assert len(fleet.summary().splitlines()) == 2


class TestFleetCalibrator:
    def test_batched_bit_identical_to_serial(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 4, seed=0)
        serial = Fleet({i: d.clone() for i, d in fleet.items()})
        pools = _pools(data, fleet.ids)

        for device_id in serial.ids:
            dev = serial.get(device_id)
            dev.calibrator.calibrate(dev.qmodel, pools[device_id])
        result = FleetCalibrator().calibrate(fleet, pools)

        assert fleet.codes_digests() == serial.codes_digests()
        assert result.rounds == deployment.calibrator.epochs
        # One shared network -> one forward per round for the whole fleet.
        assert result.bf_forward_calls == result.rounds
        assert result.serial_forward_calls == 4 * result.rounds
        assert result.total_flips > 0

    def test_stacked_feature_construction_bit_identical(self, packaged):
        """Stacked raw feature construction equals the per-device extractor."""
        from repro.core.bitflip import (
            extract_parameter_features_raw,
            extract_parameter_features_raw_stacked,
        )

        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 3, seed=0)
        pools = _pools(data, fleet.ids)
        qmodels = [fleet.get(i).qmodel for i in fleet.ids]
        batches = [pools[i].features for i in fleet.ids]
        stacked = extract_parameter_features_raw_stacked(qmodels, batches)
        for qmodel, batch, fused in zip(qmodels, batches, stacked):
            reference = extract_parameter_features_raw(qmodel, batch)
            assert fused.names == reference.names
            np.testing.assert_array_equal(fused.offsets, reference.offsets)
            np.testing.assert_array_equal(fused.matrix, reference.matrix)

    def test_stacked_extraction_rejects_heterogeneous_models(self, packaged):
        from repro.core.bitflip import extract_parameter_features_raw_stacked
        from repro.models import build_model
        from repro.quantization import quantize_model

        data, _, deployment = packaged
        other = quantize_model(
            build_model("MLP", (6,), 3, rng=np.random.default_rng(0)), bits=4
        )
        with pytest.raises(ValueError):
            extract_parameter_features_raw_stacked(
                [deployment.qmodel, other],
                [data[data.domain_names[1]].train.features[:4], np.zeros((4, 6))],
            )

    def test_per_device_feature_fallback_matches_batched(self, packaged):
        """batch_features=False walks the identical trajectory."""
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 3, seed=0)
        reference = Fleet({i: d.clone() for i, d in fleet.items()})
        pools = _pools(data, fleet.ids)
        batched = FleetCalibrator(batch_features=True).calibrate(fleet, pools)
        per_device = FleetCalibrator(batch_features=False).calibrate(reference, pools)
        assert fleet.codes_digests() == reference.codes_digests()
        for device_id in fleet.ids:
            assert (
                batched.stats[device_id].flips_per_epoch
                == per_device.stats[device_id].flips_per_epoch
            )

    def test_stats_match_serial_calibrator(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 3, seed=0)
        serial = Fleet({i: d.clone() for i, d in fleet.items()})
        pools = _pools(data, fleet.ids)

        serial_stats = {
            i: serial.get(i).calibrator.calibrate(serial.get(i).qmodel, pools[i])
            for i in serial.ids
        }
        result = FleetCalibrator().calibrate(fleet, pools)
        for device_id, stats in result.stats.items():
            reference = serial_stats[device_id]
            assert stats.flips_per_epoch == reference.flips_per_epoch
            assert stats.reverted_epochs == reference.reverted_epochs
            assert stats.pool_accuracy == reference.pool_accuracy

    def test_heterogeneous_bits_group_per_network(self, packaged):
        data, framework, deployment = packaged
        other = framework.deploy(bits=2)
        fleet = Fleet()
        fleet.register("a4", deployment.clone())
        fleet.register("b2", other.clone())
        fleet.register("c4", deployment.clone())
        serial = Fleet({i: d.clone() for i, d in fleet.items()})
        pools = _pools(data, fleet.ids)

        for device_id in serial.ids:
            dev = serial.get(device_id)
            dev.calibrator.calibrate(dev.qmodel, pools[device_id])
        result = FleetCalibrator().calibrate(fleet, pools)

        assert fleet.codes_digests() == serial.codes_digests()
        # Two distinct BF networks -> two forwards per round, not three.
        assert result.bf_forward_calls == 2 * result.rounds

    def test_missing_pool_raises(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        pools = _pools(data, fleet.ids[:1])
        with pytest.raises(KeyError, match="device-1"):
            FleetCalibrator().calibrate(fleet, pools)

    def test_process_batches_matches_per_device_process_batch(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 3, seed=0)
        serial = Fleet({i: d.clone() for i, d in fleet.items()})
        batches = _batches(data, fleet.ids)

        serial_reports = {
            i: serial.get(i).process_batch(batches[i]) for i in serial.ids
        }
        report = FleetCalibrator().process_batches(fleet, batches)

        assert fleet.codes_digests() == serial.codes_digests()
        for device_id, diagnostics in report.reports.items():
            reference = serial_reports[device_id]
            for key in ("flips_applied", "misses_observed", "qcore_size"):
                assert diagnostics[key] == reference[key]
        # QCore updates must match too, not just the model codes.
        for device_id in fleet.ids:
            updated = fleet.get(device_id).qcore.as_dataset()
            expected = serial.get(device_id).qcore.as_dataset()
            np.testing.assert_array_equal(updated.features, expected.features)
            np.testing.assert_array_equal(updated.labels, expected.labels)

    def test_process_batches_honors_nobf_ablation(self, packaged):
        data, _, deployment = packaged
        frozen = deployment.clone()
        frozen.use_bitflip = False
        fleet = Fleet({"frozen": frozen, "live": deployment.clone()})
        before = fleet.get("frozen").qmodel.codes_digest()
        report = FleetCalibrator().process_batches(fleet, _batches(data, fleet.ids))
        assert fleet.get("frozen").qmodel.codes_digest() == before
        assert report.reports["frozen"]["flips_applied"] == 0.0
        assert "frozen" not in report.calibration.stats
        assert "live" in report.calibration.stats

    def test_missing_batch_raises(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        with pytest.raises(KeyError, match="device-1"):
            FleetCalibrator().process_batches(fleet, _batches(data, fleet.ids[:1]))


class TestShardedFleet:
    def _stream(self, data, device_ids, steps=2):
        return [_batches(data, device_ids, step=step) for step in range(steps)]

    def test_single_worker_matches_in_process_calibrator(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 4, seed=0)
        reference = Fleet({i: d.clone() for i, d in fleet.items()})
        stream = self._stream(data, fleet.ids)

        calibrator = FleetCalibrator()
        expected = [calibrator.process_batches(reference, b).reports for b in stream]
        reports = run_fleet_stream(fleet, stream, workers=1)

        assert fleet.codes_digests() == reference.codes_digests()
        for merged, exp in zip(reports, expected):
            assert set(merged) == set(exp)
            for device_id in merged:
                for key in ("flips_applied", "misses_observed", "qcore_size"):
                    assert merged[device_id][key] == exp[device_id][key]

    def test_two_workers_match_single_worker(self, packaged):
        data, _, deployment = packaged
        fleet_serial = Fleet.replicate(deployment, 4, seed=0)
        fleet_sharded = Fleet(
            {i: d.clone() for i, d in fleet_serial.items()}
        )
        stream = self._stream(data, fleet_serial.ids)

        run_fleet_stream(fleet_serial, stream, workers=1)
        run_fleet_stream(fleet_sharded, stream, workers=2, mp_context="fork")

        assert fleet_sharded.codes_digests() == fleet_serial.codes_digests()
        # Unpickling shards must not split the fleet-wide BF-network sharing:
        # a later batched calibration still runs one forward per round.
        assert len({id(dep.bitflip) for dep in fleet_sharded.devices()}) == 1
        assert all(
            dep.calibrator.network is dep.bitflip for dep in fleet_sharded.devices()
        )

    def test_empty_fleet_and_missing_batches_rejected(self, packaged):
        data, _, deployment = packaged
        with pytest.raises(ValueError, match="empty"):
            run_fleet_stream(Fleet(), [], workers=1)
        fleet = Fleet.replicate(deployment, 2, seed=0)
        with pytest.raises(KeyError, match="stream step 0"):
            run_fleet_stream(fleet, [_batches(data, fleet.ids[:1])], workers=1)

    def test_empty_stream_is_noop(self, packaged):
        _, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        before = fleet.codes_digests()
        assert run_fleet_stream(fleet, [], workers=1) == []
        assert fleet.codes_digests() == before

    def test_worker_failure_names_the_shard(self, packaged):
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        target = data[data.domain_names[1]].train
        empty = target.subset(np.array([], dtype=np.int64))
        stream = [{i: empty for i in fleet.ids}]
        # Empty batches blow up inside begin_batch, in the "worker".
        with pytest.raises(WorkerError, match="fleet shard"):
            run_fleet_stream(fleet, stream, workers=1)

    def test_failed_stream_leaves_fleet_untouched(self, packaged):
        """Failure atomicity must not depend on the worker count: a stream
        that fails mid-way leaves the caller's fleet in its pre-call state."""
        data, _, deployment = packaged
        fleet = Fleet.replicate(deployment, 2, seed=0)
        target = data[data.domain_names[1]].train
        empty = target.subset(np.array([], dtype=np.int64))
        before = fleet.codes_digests()
        # Step 0 succeeds (and would flip codes); step 1 fails.
        stream = [_batches(data, fleet.ids), {i: empty for i in fleet.ids}]
        with pytest.raises(WorkerError):
            run_fleet_stream(fleet, stream, workers=1)
        assert fleet.codes_digests() == before
