"""Ingestion edge cases of the async fleet gateway.

The gateway's contracts, each pinned here: every ``offer`` answers with a
typed admission (never an exception, never silence), duplicates collapse to
one round, out-of-order arrival still dispatches in ``seq`` order, lease
expiry requeues exactly once before quarantining, the queue is hard-bounded
with explicit Deferred/Shed pressure answers, and — above all — routing
reports through the gateway changes *nothing* about the calibration results:
bit-identical at float64 to the raw batched calibrator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.data.dataset import Dataset
from repro.fleet import FaultPlan, FaultSpec, Fleet, FleetCalibrator, RetryPolicy
from repro.fleet.gateway import (
    Accepted,
    Backpressure,
    BackpressurePolicy,
    Deferred,
    DeviceReport,
    FleetGateway,
    GatewayConfig,
    ManualClock,
    Rejected,
    Shed,
)
from repro.fleet.store import DeviceStateStore
from repro.models.mlp import MLPClassifier

pytestmark = pytest.mark.timeout(120)

TINY_TS = SyntheticTimeSeriesConfig(
    num_classes=3, num_domains=2, channels=3, length=12,
    train_per_class=8, val_per_class=1, test_per_class=3,
)
NUM_DEVICES = 3
LEASE_S = 10.0
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _flatten(dataset: Dataset) -> Dataset:
    return Dataset(
        dataset.features.reshape(len(dataset), -1),
        dataset.labels,
        dataset.num_classes,
        name=dataset.name,
    )


@pytest.fixture(scope="module")
def packaged():
    """A tiny packaged deployment plus a target-domain pool source."""
    data = make_dsa_surrogate(seed=0, config=TINY_TS)
    source = _flatten(data[data.domain_names[0]].train)
    target = _flatten(data[data.domain_names[1]].train)
    model = MLPClassifier(
        source.features.shape[1], TINY_TS.num_classes,
        hidden=(16,), rng=np.random.default_rng(0),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=16, train_epochs=2, calibration_epochs=3,
        edge_calibration_epochs=2, seed=0,
    )
    framework.fit(model, source)
    deployment = framework.deploy(bits=4)
    deployment.calibrator.batchnorm_refresh_passes = 1
    return deployment, target


def _fleet(deployment) -> Fleet:
    return Fleet.replicate(deployment, NUM_DEVICES, seed=0)


def _pool(target: Dataset, start: int) -> Dataset:
    return target.subset(np.arange(start, start + 8) % len(target))


def _pools(target: Dataset, device_ids, wave: int):
    return {
        device_id: _pool(target, wave * 11 + k * 5)
        for k, device_id in enumerate(device_ids)
    }


def _gateway(fleet: Fleet, clock: ManualClock, **overrides) -> FleetGateway:
    config = overrides.pop(
        "config", GatewayConfig(lease_s=LEASE_S, queue_max=16, max_batch=NUM_DEVICES)
    )
    policy = overrides.pop(
        "policy",
        BackpressurePolicy(queue_max=config.queue_max, defer_watermark=1.0),
    )
    return FleetGateway(
        fleet, retry_policy=FAST_RETRY, config=config, policy=policy,
        clock=clock, **overrides,
    )


class TestAdmission:
    def test_unknown_device_rejected(self, packaged):
        deployment, target = packaged
        gateway = _gateway(_fleet(deployment), ManualClock())
        result = gateway.offer(
            DeviceReport(device_id="intruder", seq=0, pool=_pool(target, 0))
        )
        assert isinstance(result, Rejected)
        assert "unknown" in result.reason
        assert gateway.stats.rejected == 1

    def test_duplicate_seq_collapses_to_one_round(self, packaged):
        deployment, target = packaged
        gateway = _gateway(_fleet(deployment), ManualClock())
        report = DeviceReport(device_id="device-0", seq=0, pool=_pool(target, 0))
        first = gateway.offer(report)
        second = gateway.offer(report)
        assert isinstance(first, Accepted) and not first.deduped
        assert isinstance(second, Accepted) and second.deduped
        logs = gateway.pump()
        assert len(logs) == 1
        assert gateway.stats.rounds == 1
        assert gateway.stats.completed_reports == 1
        assert gateway.stats.deduped == 1

    def test_same_pool_different_seq_also_collapses(self, packaged):
        deployment, target = packaged
        gateway = _gateway(_fleet(deployment), ManualClock())
        pool = _pool(target, 0)
        gateway.offer(DeviceReport(device_id="device-0", seq=0, pool=pool))
        result = gateway.offer(DeviceReport(device_id="device-0", seq=1, pool=pool))
        assert isinstance(result, Accepted) and result.deduped
        assert gateway.pump()
        assert gateway.stats.rounds == 1

    def test_stale_seq_rejected_after_dispatch(self, packaged):
        deployment, target = packaged
        gateway = _gateway(_fleet(deployment), ManualClock())
        gateway.offer(DeviceReport(device_id="device-0", seq=3, pool=_pool(target, 0)))
        gateway.pump()
        result = gateway.offer(
            DeviceReport(device_id="device-0", seq=3, pool=_pool(target, 9))
        )
        assert isinstance(result, Rejected)
        assert "stale" in result.reason

    def test_deferred_past_watermark(self, packaged):
        deployment, target = packaged
        policy = BackpressurePolicy(queue_max=4, defer_watermark=0.5, retry_after_s=2.0)
        gateway = _gateway(
            _fleet(deployment), ManualClock(),
            config=GatewayConfig(lease_s=LEASE_S, queue_max=4, max_batch=NUM_DEVICES),
            policy=policy,
        )
        for k, device_id in enumerate(["device-0", "device-1"]):
            assert isinstance(
                gateway.offer(
                    DeviceReport(device_id=device_id, seq=0, pool=_pool(target, k * 9))
                ),
                Accepted,
            )
        result = gateway.offer(
            DeviceReport(device_id="device-2", seq=0, pool=_pool(target, 20))
        )
        assert isinstance(result, Deferred)
        assert isinstance(result, Backpressure)
        assert result.retry_after == 2.0
        assert gateway.stats.deferred == 1
        # The deferred report was NOT queued: only two devices dispatch.
        logs = gateway.pump()
        assert sum(len(log.devices) for log in logs) == 2

    def test_shed_when_queue_full(self, packaged):
        deployment, target = packaged
        gateway = _gateway(
            _fleet(deployment), ManualClock(),
            config=GatewayConfig(lease_s=LEASE_S, queue_max=2, max_batch=NUM_DEVICES),
            policy=BackpressurePolicy(queue_max=2, defer_watermark=1.0),
        )
        for k, device_id in enumerate(["device-0", "device-1"]):
            gateway.offer(
                DeviceReport(device_id=device_id, seq=0, pool=_pool(target, k * 9))
            )
        result = gateway.offer(
            DeviceReport(device_id="device-2", seq=0, pool=_pool(target, 20))
        )
        assert isinstance(result, Shed)
        assert isinstance(result, Backpressure)
        assert "full" in result.reason
        assert gateway.stats.shed == 1

    def test_quarantined_device_rejected(self, packaged):
        deployment, target = packaged
        store = DeviceStateStore()
        store.register_device("device-0")
        store.quarantine_device("device-0", "flaky sensor")
        gateway = _gateway(_fleet(deployment), ManualClock(), store=store)
        result = gateway.offer(
            DeviceReport(device_id="device-0", seq=0, pool=_pool(target, 0))
        )
        assert isinstance(result, Rejected)
        assert "quarantined" in result.reason


class TestOrdering:
    def test_out_of_order_arrival_dispatches_in_seq_order(self, packaged):
        """seq 1 arriving before seq 0 must still calibrate 0 first — and the
        result must be bit-identical to the raw calibrator run in order."""
        deployment, target = packaged
        raw = _fleet(deployment)
        calibrator = FleetCalibrator()
        for wave in range(2):
            calibrator.calibrate(raw, _pools(target, raw.ids, wave))

        fleet = _fleet(deployment)
        gateway = _gateway(fleet, ManualClock())
        for wave in (1, 0):  # deliberately reversed arrival
            pools = _pools(target, fleet.ids, wave)
            for device_id in fleet.ids:
                assert isinstance(
                    gateway.offer(
                        DeviceReport(device_id=device_id, seq=wave, pool=pools[device_id])
                    ),
                    Accepted,
                )
        logs = gateway.pump()
        assert gateway.stats.rounds == 2
        assert [sorted(log.devices) for log in logs] == [sorted(fleet.ids)] * 2
        assert fleet.codes_digests() == raw.codes_digests()


class TestLeases:
    def test_expiry_requeues_exactly_once_then_recovers(self, packaged):
        deployment, target = packaged
        clock = ManualClock()
        gateway = _gateway(_fleet(deployment), clock)
        gateway.offer(DeviceReport(device_id="device-0", seq=0, pool=_pool(target, 0)))
        clock.advance(LEASE_S + 1.0)
        log = gateway.tick()
        assert log is not None and log.round_id is None
        assert log.requeued == ["device-0"]
        assert gateway.stats.requeued == 1
        # The device comes back: one heartbeat and the parked report runs.
        gateway.heartbeat("device-0")
        log = gateway.tick()
        assert log is not None and log.round_id is not None
        assert log.statuses == {"device-0": "done"}
        assert gateway.stats.requeued == 1  # exactly once, not again

    def test_second_expiry_quarantines_through_the_store(self, packaged):
        deployment, target = packaged
        clock = ManualClock()
        gateway = _gateway(_fleet(deployment), clock)
        gateway.offer(DeviceReport(device_id="device-0", seq=0, pool=_pool(target, 0)))
        clock.advance(LEASE_S + 1.0)
        gateway.tick()  # requeue
        log = gateway.tick()  # still silent: quarantine
        assert log is not None and log.quarantined == ["device-0"]
        assert gateway.stats.quarantined == 1
        quarantined = gateway.service.store.quarantined_devices()
        assert "device-0" in quarantined
        assert "lease expired" in quarantined["device-0"]
        late = gateway.offer(
            DeviceReport(device_id="device-0", seq=1, pool=_pool(target, 9))
        )
        assert isinstance(late, Rejected)
        assert "quarantined" in late.reason

    def test_injected_lease_expiry_race_requeues_not_quarantines(self, packaged):
        """The collect/execute race window: a lease that lapses between the
        two checks costs one requeue, and the device recovers on heartbeat."""
        deployment, target = packaged
        plan = FaultPlan(
            [FaultSpec(kind="lease_expiry", target="device-1", max_fires=1)], seed=0
        )
        fleet = _fleet(deployment)
        gateway = _gateway(fleet, ManualClock(), fault_plan=plan)
        pools = _pools(target, fleet.ids, 0)
        for device_id in fleet.ids:
            gateway.offer(DeviceReport(device_id=device_id, seq=0, pool=pools[device_id]))
        log = gateway.tick()
        assert log is not None
        assert log.requeued == ["device-1"]
        assert sorted(log.devices) == ["device-0", "device-2"]
        gateway.heartbeat("device-1")
        log = gateway.tick()
        assert log is not None and log.statuses == {"device-1": "done"}
        assert gateway.stats.requeued == 1
        assert gateway.stats.quarantined == 0
        assert gateway.stats.completed_reports == NUM_DEVICES

    def test_offer_renews_lease(self, packaged):
        deployment, target = packaged
        clock = ManualClock()
        gateway = _gateway(_fleet(deployment), clock)
        gateway.offer(DeviceReport(device_id="device-0", seq=0, pool=_pool(target, 0)))
        first = gateway.lease_expires_at("device-0")
        clock.advance(1.0)
        gateway.offer(DeviceReport(device_id="device-0", seq=1, pool=_pool(target, 9)))
        assert gateway.lease_expires_at("device-0") == pytest.approx(first + 1.0)


class TestBitIdentity:
    def test_gateway_matches_raw_calibrator_over_waves(self, packaged):
        deployment, target = packaged
        raw = _fleet(deployment)
        calibrator = FleetCalibrator()
        for wave in range(2):
            calibrator.calibrate(raw, _pools(target, raw.ids, wave))

        fleet = _fleet(deployment)
        gateway = _gateway(fleet, ManualClock())
        for wave in range(2):
            pools = _pools(target, fleet.ids, wave)
            for device_id in fleet.ids:
                gateway.offer(
                    DeviceReport(device_id=device_id, seq=wave, pool=pools[device_id])
                )
            gateway.pump()
        assert fleet.codes_digests() == raw.codes_digests()
        # Snapshot reuse kicked in after round one: the gateway knows every
        # device's post-round state exactly and skips the capture walk.
        assert len(gateway._snapshots) == NUM_DEVICES


class TestEnvKnobs:
    def test_lease_env_must_be_numeric(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LEASE_S", "soon")
        with pytest.raises(ValueError, match="REPRO_FLEET_LEASE_S"):
            GatewayConfig.from_env()

    def test_lease_env_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LEASE_S", "0")
        with pytest.raises(ValueError, match="must be > 0"):
            GatewayConfig.from_env()

    def test_queue_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_QUEUE_MAX", "many")
        with pytest.raises(ValueError, match="REPRO_FLEET_QUEUE_MAX"):
            GatewayConfig.from_env()

    def test_queue_env_must_be_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_QUEUE_MAX", "0")
        with pytest.raises(ValueError, match="must be >= 1"):
            GatewayConfig.from_env()

    def test_env_values_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LEASE_S", "12.5")
        monkeypatch.setenv("REPRO_FLEET_QUEUE_MAX", "7")
        config = GatewayConfig.from_env()
        assert config.lease_s == 12.5
        assert config.queue_max == 7

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_QUEUE_MAX", "7")
        assert GatewayConfig.from_env(queue_max=3).queue_max == 3

    def test_max_attempts_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_MAX_ATTEMPTS", "0")
        with pytest.raises(ValueError, match="REPRO_FLEET_MAX_ATTEMPTS"):
            RetryPolicy.from_env()
        monkeypatch.setenv("REPRO_FLEET_MAX_ATTEMPTS", "5")
        assert RetryPolicy.from_env().max_attempts == 5


class TestValidation:
    def test_gateway_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="lease_s"):
            GatewayConfig(lease_s=0.0)
        with pytest.raises(ValueError, match="queue_max"):
            GatewayConfig(queue_max=0)
        with pytest.raises(ValueError, match="max_batch"):
            GatewayConfig(max_batch=0)
        with pytest.raises(ValueError, match="requeue_limit"):
            GatewayConfig(requeue_limit=-1)

    def test_device_report_validates(self, packaged):
        _, target = packaged
        with pytest.raises(ValueError, match="device_id"):
            DeviceReport(device_id="", seq=0, pool=_pool(target, 0))
        with pytest.raises(ValueError, match="seq"):
            DeviceReport(device_id="device-0", seq=-1, pool=_pool(target, 0))

    def test_backpressure_policy_validates(self):
        with pytest.raises(ValueError, match="defer_watermark"):
            BackpressurePolicy(defer_watermark=0.0)
        with pytest.raises(ValueError, match="retry_after_s"):
            BackpressurePolicy(retry_after_s=0.0)

    def test_backpressure_policy_regimes(self):
        policy = BackpressurePolicy(queue_max=10, defer_watermark=0.5)
        assert policy.admit(0) is None
        assert policy.admit(4) is None
        assert isinstance(policy.admit(5), Deferred)
        assert isinstance(policy.admit(10), Shed)
