"""Chaos-harness tests: delivery faults must never change surviving results.

Each fault family of the gateway chaos suite (stall, duplicate, reorder,
flood, lease-expiry races) runs a golden-vs-perturbed comparison through
:func:`repro.fleet.gateway.run_chaos` and must come back ``identical=True``:
every device that survived the faults ends bit-identical at float64 to its
fault-free twin.  The writer-crash fault has its own subprocess coverage in
``tests/fleet/test_daemon.py`` and ``tools/chaos_gateway_smoke.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.data.dataset import Dataset
from repro.fleet import FaultPlan, FaultSpec, Fleet
from repro.fleet.gateway import build_wave_schedule, perturb_schedule, run_chaos
from repro.models.mlp import MLPClassifier

pytestmark = pytest.mark.timeout(300)

TINY_TS = SyntheticTimeSeriesConfig(
    num_classes=3, num_domains=2, channels=3, length=12,
    train_per_class=8, val_per_class=1, test_per_class=3,
)
NUM_DEVICES = 3
NUM_WAVES = 3


def _flatten(dataset: Dataset) -> Dataset:
    return Dataset(
        dataset.features.reshape(len(dataset), -1),
        dataset.labels,
        dataset.num_classes,
        name=dataset.name,
    )


@pytest.fixture(scope="module")
def packaged():
    data = make_dsa_surrogate(seed=0, config=TINY_TS)
    source = _flatten(data[data.domain_names[0]].train)
    target = _flatten(data[data.domain_names[1]].train)
    model = MLPClassifier(
        source.features.shape[1], TINY_TS.num_classes,
        hidden=(16,), rng=np.random.default_rng(0),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=16, train_epochs=2, calibration_epochs=3,
        edge_calibration_epochs=2, seed=0,
    )
    framework.fit(model, source)
    deployment = framework.deploy(bits=4)
    deployment.calibrator.batchnorm_refresh_passes = 1
    return deployment, target


@pytest.fixture(scope="module")
def harness(packaged):
    """(fleet_factory, wave_pools) for run_chaos — deterministic per build."""
    deployment, target = packaged

    def fleet_factory() -> Fleet:
        return Fleet.replicate(deployment, NUM_DEVICES, seed=0)

    device_ids = list(fleet_factory().ids)
    wave_pools = [
        {
            device_id: target.subset(
                np.arange(wave * 11 + k * 5, wave * 11 + k * 5 + 8) % len(target)
            )
            for k, device_id in enumerate(device_ids)
        }
        for wave in range(NUM_WAVES)
    ]
    return fleet_factory, wave_pools


def test_stall_quarantines_victim_survivors_identical(harness):
    fleet_factory, wave_pools = harness
    plan = FaultPlan(
        [FaultSpec(kind="stall", target="deliver:device-1:s1", max_fires=1)], seed=0
    )
    result = run_chaos(fleet_factory, wave_pools, plan)
    assert result.identical, result.mismatched
    assert "device-1" in result.stalled
    assert "device-1" in result.quarantined
    assert "lease expired" in result.quarantined["device-1"]
    assert sorted(result.survivors) == ["device-0", "device-2"]
    # The stall cost one requeue (the quiet device's queued report got one
    # second chance) before quarantine dropped it.
    assert result.chaos_stats.requeued >= 1
    assert result.chaos_stats.quarantined == 1


def test_duplicates_collapse_bit_identically(harness):
    fleet_factory, wave_pools = harness
    plan = FaultPlan(
        [FaultSpec(kind="duplicate", probability=1.0, max_fires=4, copies=2)], seed=0
    )
    result = run_chaos(fleet_factory, wave_pools, plan)
    assert result.identical, result.mismatched
    assert result.quarantined == {}
    assert sorted(result.survivors) == ["device-0", "device-1", "device-2"]
    assert result.chaos_stats.deduped >= 4
    # Dedupe means no extra calibration work: same completed count as golden.
    assert result.chaos_stats.completed_reports == result.golden_stats.completed_reports


def test_reorder_keeps_seq_order_and_identity(harness):
    fleet_factory, wave_pools = harness
    plan = FaultPlan(
        [FaultSpec(kind="reorder", probability=1.0, max_fires=6)], seed=0
    )
    result = run_chaos(fleet_factory, wave_pools, plan)
    assert result.identical, result.mismatched
    assert result.quarantined == {}
    assert len(result.survivors) == NUM_DEVICES


def test_flood_is_absorbed(harness):
    fleet_factory, wave_pools = harness
    plan = FaultPlan(
        [FaultSpec(kind="flood", target="deliver:device-0", max_fires=2, copies=5)],
        seed=0,
    )
    result = run_chaos(fleet_factory, wave_pools, plan)
    assert result.identical, result.mismatched
    assert result.chaos_stats.deduped >= 5
    assert len(result.survivors) == NUM_DEVICES


def test_lease_expiry_race_recovers_without_quarantine(harness):
    fleet_factory, wave_pools = harness
    plan = FaultPlan(
        [FaultSpec(kind="lease_expiry", target="device-2", max_fires=1)], seed=0
    )
    result = run_chaos(fleet_factory, wave_pools, plan)
    assert result.identical, result.mismatched
    # The race victim recovered on its next heartbeat: requeued exactly
    # once, never quarantined, still a survivor.
    assert result.quarantined == {}
    assert "device-2" in result.survivors
    assert result.chaos_stats.requeued == 1


def test_combined_plan_and_determinism(harness):
    """Everything at once, twice: same seed, same run, bit for bit."""
    fleet_factory, wave_pools = harness

    def plan() -> FaultPlan:
        return FaultPlan(
            [
                FaultSpec(kind="stall", target="deliver:device-1:s2", max_fires=1),
                FaultSpec(kind="duplicate", probability=0.5, max_fires=3),
                FaultSpec(kind="reorder", probability=0.5, max_fires=3),
                FaultSpec(kind="flood", target="deliver:device-0:s0",
                          max_fires=1, copies=4),
            ],
            seed=7,
        )

    first = run_chaos(fleet_factory, wave_pools, plan())
    second = run_chaos(fleet_factory, wave_pools, plan())
    assert first.identical, first.mismatched
    assert first.chaos_digests == second.chaos_digests
    assert first.quarantined == second.quarantined
    assert first.survivors == second.survivors


def test_perturb_schedule_is_pure_bookkeeping(harness):
    """Schedule-level invariants, no calibration: stall truncates, duplicate
    multiplies, the output stays time-sorted."""
    fleet_factory, wave_pools = harness
    device_ids = list(fleet_factory().ids)
    schedule = build_wave_schedule(device_ids, wave_pools)
    assert len(schedule) == NUM_DEVICES * NUM_WAVES

    plan = FaultPlan(
        [
            FaultSpec(kind="stall", target="deliver:device-0:s1", max_fires=1),
            FaultSpec(kind="duplicate", target="deliver:device-1:s0",
                      max_fires=1, copies=3),
        ],
        seed=0,
    )
    deliveries, stalled = perturb_schedule(schedule, plan)
    assert stalled == {"device-0": pytest.approx(schedule[NUM_DEVICES].at)}
    # device-0 loses its s1 and s2 deliveries (2 gone), device-1 gains 3.
    assert len(deliveries) == len(schedule) - 2 + 3
    times = [item.at for item in deliveries]
    assert times == sorted(times)
    assert all(item.report.device_id != "device-0" or item.report.seq == 0
               for item in deliveries)
