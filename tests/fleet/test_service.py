"""Recovery tests for the durable fleet calibration service.

Every fault class of the harness (worker crash, transient exception, slow
device/timeout, store-write failure) is injected deterministically and the
round must either complete via retry or quarantine the device — and whenever
it completes, the fleet's final codes must be bit-identical at float64 to the
uninterrupted golden run.  That is the contract that makes the durability
machinery trustworthy: recovery may cost time, never correctness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.fleet import (
    FaultPlan,
    FaultSpec,
    Fleet,
    FleetCalibrator,
    FleetService,
    RetryPolicy,
    dataset_digest,
)
from repro.fleet.store import DeviceStateStore
from repro.models import build_model

TINY_TS = SyntheticTimeSeriesConfig(
    num_classes=3, num_domains=2, channels=3, length=16,
    train_per_class=8, val_per_class=1, test_per_class=3,
)

NUM_DEVICES = 3

#: A retry policy with no sleeping — tests exercise logic, not clocks.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def packaged():
    data = make_dsa_surrogate(seed=0, config=TINY_TS)
    model = build_model(
        "InceptionTime", data.input_shape, data.num_classes,
        rng=np.random.default_rng(0),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=12, train_epochs=3, calibration_epochs=4,
        edge_calibration_epochs=2, seed=0,
    )
    framework.fit(model, data[data.domain_names[0]].train)
    deployment = framework.deploy(bits=4)
    return data, framework, deployment


def _fleet(deployment):
    """A fresh fleet of identical replicas at the packaged state."""
    return Fleet.replicate(deployment, NUM_DEVICES, seed=0)


def _pools(data, device_ids, shared=False):
    target = data[data.domain_names[1]].train
    if shared:
        pool = target.subset(np.arange(12))
        return {device_id: pool for device_id in device_ids}
    return {
        device_id: target.subset(np.arange(k * 6, k * 6 + 12) % len(target))
        for k, device_id in enumerate(device_ids)
    }


@pytest.fixture(scope="module")
def golden(packaged):
    """Digests of an uninterrupted plain-calibrator round (the pin)."""
    data, _, deployment = packaged
    fleet = _fleet(deployment)
    FleetCalibrator().calibrate(fleet, _pools(data, fleet.ids))
    return fleet.codes_digests()


def _drain_round(service, pools):
    round_id = service.submit(pools)
    return round_id, service.drain(round_id, pools)


class TestHappyPath:
    def test_bit_identical_to_plain_calibrator(self, packaged, golden):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        service = FleetService(fleet)
        _, outcome = _drain_round(service, _pools(data, fleet.ids))
        assert outcome.calibrated_devices == NUM_DEVICES
        assert outcome.quarantined == {}
        assert fleet.codes_digests() == golden

    def test_identical_replicas_dedupe_to_one_group(self, packaged):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        pools = _pools(data, fleet.ids, shared=True)
        service = FleetService(fleet)
        _, outcome = _drain_round(service, pools)
        assert outcome.num_groups == 1
        assert outcome.calibrated_devices == NUM_DEVICES
        # The scatter must equal per-device calibration: all replicas started
        # identical with identical pools, so they must all end identical.
        digests = set(fleet.codes_digests().values())
        assert len(digests) == 1

    def test_scatter_matches_per_device_calibration(self, packaged):
        """The dedupe shortcut (calibrate one representative, scatter the
        state) must be bit-identical to calibrating every replica."""
        data, _, deployment = packaged
        serial = _fleet(deployment)
        pools = _pools(data, serial.ids, shared=True)
        FleetCalibrator().calibrate(serial, pools)

        deduped = _fleet(deployment)
        service = FleetService(deduped)
        _drain_round(service, _pools(data, deduped.ids, shared=True))
        assert deduped.codes_digests() == serial.codes_digests()

    def test_poll_reports_progress(self, packaged):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        service = FleetService(fleet)
        pools = _pools(data, fleet.ids)
        round_id = service.submit(pools)
        status = service.poll(round_id)
        assert status.counts == {"pending": NUM_DEVICES}
        assert not status.done
        service.drain(round_id, pools)
        status = service.poll(round_id)
        assert status.counts == {"done": NUM_DEVICES}
        assert status.done and status.quarantined == {}

    def test_submit_requires_pools_for_all_devices(self, packaged):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        service = FleetService(fleet)
        pools = _pools(data, fleet.ids)
        pools.pop("device-2")
        with pytest.raises(KeyError, match="device-2"):
            service.submit(pools)


class TestFaultInjection:
    def test_transient_fault_retries_to_bit_identical_result(self, packaged, golden):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        # Fire on every group's first attempt; retries are clean.
        plan = FaultPlan([FaultSpec(kind="transient", target=":a1", max_fires=NUM_DEVICES)])
        service = FleetService(fleet, retry_policy=FAST_RETRY, fault_plan=plan)
        round_id, outcome = _drain_round(service, _pools(data, fleet.ids))
        assert plan.fires >= 1
        assert outcome.retries >= 1
        assert outcome.quarantined == {}
        assert fleet.codes_digests() == golden
        rows = service.store.device_rounds(round_id)
        assert all(row.status == "done" for row in rows)
        assert all(row.attempts == 2 for row in rows)

    def test_soft_crash_retries_to_bit_identical_result(self, packaged, golden):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        plan = FaultPlan([FaultSpec(kind="crash", hard=False, target=":a1", max_fires=1)])
        service = FleetService(fleet, retry_policy=FAST_RETRY, fault_plan=plan)
        _, outcome = _drain_round(service, _pools(data, fleet.ids))
        assert outcome.quarantined == {}
        assert fleet.codes_digests() == golden

    def test_hard_crash_in_worker_is_retried(self, packaged, golden):
        """A worker killed by os._exit mid-calibration (indistinguishable
        from a segfault) must cost one retry, not the round."""
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        plan = FaultPlan([FaultSpec(kind="crash", hard=True, target="device-0:a1")])
        service = FleetService(
            fleet,
            retry_policy=FAST_RETRY,
            fault_plan=plan,
            workers=2,
            mp_context="fork",
        )
        with service:
            round_id, outcome = _drain_round(service, _pools(data, fleet.ids))
            assert outcome.quarantined == {}
            assert outcome.retries >= 1
            assert fleet.codes_digests() == golden
            row = service.store.get_device_round(round_id, "device-0")
            assert row.attempts == 2
            assert "died" in (row.last_error or "") or row.last_error is None

    def test_slow_device_times_out_then_succeeds(self, packaged, golden):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        plan = FaultPlan(
            [FaultSpec(kind="slow", target="device-1:a1", delay=0.4)]
        )
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.0, jitter=0.0, timeout=0.35
        )
        service = FleetService(fleet, retry_policy=policy, fault_plan=plan)
        round_id, outcome = _drain_round(service, _pools(data, fleet.ids))
        assert outcome.quarantined == {}
        assert fleet.codes_digests() == golden
        row = service.store.get_device_round(round_id, "device-1")
        assert row.attempts == 2

    def test_store_write_fault_is_absorbed_by_write_retry(self, packaged, golden):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        plan = FaultPlan([FaultSpec(kind="store_write", target="update", max_fires=2)])
        store = DeviceStateStore(retry_sleep=0.0)
        service = FleetService(
            fleet, store=store, retry_policy=FAST_RETRY, fault_plan=plan
        )
        round_id, outcome = _drain_round(service, _pools(data, fleet.ids))
        assert plan.fires == 2
        assert outcome.calibrated_devices == NUM_DEVICES
        assert fleet.codes_digests() == golden
        assert all(
            row.status == "done" for row in service.store.device_rounds(round_id)
        )

    def test_poisoned_device_quarantines_round_completes(self, packaged, golden):
        """Graceful degradation: a device that fails every attempt must be
        quarantined with its traceback persisted while the healthy remainder
        still completes — the round never raises."""
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        plan = FaultPlan([FaultSpec(kind="transient", target="device-0", max_fires=99)])
        service = FleetService(fleet, retry_policy=FAST_RETRY, fault_plan=plan)
        round_id, outcome = _drain_round(service, _pools(data, fleet.ids))
        assert set(outcome.quarantined) == {"device-0"}
        assert "TransientFault" in outcome.quarantined["device-0"]
        assert outcome.statuses["device-1"] == "done"
        assert outcome.statuses["device-2"] == "done"
        # Healthy devices match the golden run exactly.
        digests = fleet.codes_digests()
        assert digests["device-1"] == golden["device-1"]
        assert digests["device-2"] == golden["device-2"]
        # Quarantine is persisted with the traceback, and attempts hit the cap.
        assert "device-0" in service.store.quarantined_devices()
        assert service.store.get_device_round(round_id, "device-0").attempts == 3
        # The next round excludes the quarantined device automatically.
        next_round = service.submit(_pools(data, fleet.ids))
        assert {row.device_id for row in service.store.device_rounds(next_round)} == {
            "device-1",
            "device-2",
        }


class TestResume:
    def test_interrupted_round_resumes_bit_identical(self, packaged, golden, tmp_path):
        """The headline durability claim: a round interrupted mid-flight and
        resumed from the store by a *fresh* service over a *rebuilt* fleet
        must produce flip decisions bit-identical to the uninterrupted run."""
        data, _, deployment = packaged
        path = tmp_path / "fleet.db"
        pools_by = lambda fleet: _pools(data, fleet.ids)

        # Process one: submit, then "crash" mid-round — rows are mid-attempt
        # (running) and the in-memory device state has drifted arbitrarily.
        fleet_a = _fleet(deployment)
        service_a = FleetService(fleet_a, store=DeviceStateStore(path))
        round_id = service_a.submit(pools_by(fleet_a))
        for device_id in fleet_a.ids:
            service_a.store.mark_running(round_id, device_id)
        drift_pools = _pools(data, fleet_a.ids, shared=True)
        FleetCalibrator().calibrate(fleet_a, drift_pools)  # simulated partial work
        service_a.store.close()  # the "crash": nothing else is cleaned up

        # Process two: fresh service, fleet rebuilt at round-start state.
        fleet_b = _fleet(deployment)
        service_b = FleetService(fleet_b, store=DeviceStateStore(path))
        assert service_b.store.unfinished_rounds() == [round_id]
        outcomes = service_b.resume(pools_by(fleet_b))
        assert len(outcomes) == 1
        assert outcomes[0].resumed_devices == NUM_DEVICES
        assert outcomes[0].quarantined == {}
        assert fleet_b.codes_digests() == golden
        status = service_b.poll(round_id)
        assert status.done and status.status == "done"
        # Interrupted attempts count: resume is attempt 2 for every device.
        assert all(
            attempts == 2 for attempts in status.attempts.values()
        )

    def test_finished_round_reapplies_idempotently(self, packaged, golden, tmp_path):
        """Draining an already-done round restores the persisted results —
        recovery after a crash *between* rounds costs zero recalibration."""
        data, _, deployment = packaged
        path = tmp_path / "fleet.db"

        fleet_a = _fleet(deployment)
        service_a = FleetService(fleet_a, store=DeviceStateStore(path))
        round_id, _ = _drain_round(service_a, _pools(data, fleet_a.ids))
        assert fleet_a.codes_digests() == golden
        service_a.store.close()

        fleet_b = _fleet(deployment)
        service_b = FleetService(fleet_b, store=DeviceStateStore(path))
        outcome = service_b.drain(round_id, _pools(data, fleet_b.ids))
        assert outcome.resumed_devices == NUM_DEVICES
        assert outcome.calibrated_devices == NUM_DEVICES
        assert fleet_b.codes_digests() == golden

    def test_drain_rejects_mismatched_pools(self, packaged):
        data, _, deployment = packaged
        fleet = _fleet(deployment)
        service = FleetService(fleet)
        round_id = service.submit(_pools(data, fleet.ids))
        with pytest.raises(ValueError, match="bit-identity"):
            service.drain(round_id, _pools(data, fleet.ids, shared=True))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(backoff_base=-1.0)

    def test_backoff_shape_and_determinism(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, max_backoff=0.5, jitter=0.0
        )
        assert policy.backoff("g", 1) == 0.0
        assert policy.backoff("g", 2) == pytest.approx(0.1)
        assert policy.backoff("g", 3) == pytest.approx(0.2)
        assert policy.backoff("g", 6) == pytest.approx(0.5)  # capped

        jittered = RetryPolicy(backoff_base=0.1, jitter=0.25, seed=4)
        first = jittered.backoff("group-a", 2)
        assert first == jittered.backoff("group-a", 2)  # deterministic
        assert first != jittered.backoff("group-b", 2)  # de-synchronised
        assert 0.075 <= first <= 0.125

    def test_dataset_digest_distinguishes_pools(self, packaged):
        data, _, _ = packaged
        target = data[data.domain_names[1]].train
        a = target.subset(np.arange(10))
        b = target.subset(np.arange(1, 11))
        assert dataset_digest(a) == dataset_digest(target.subset(np.arange(10)))
        assert dataset_digest(a) != dataset_digest(b)
