"""Tests for the durable device-state store (SQLite WAL, write retry)."""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.fleet.store import DeviceStateStore, StoreError


def _snapshot(seed=0):
    rng = np.random.default_rng(seed)
    return {"codes": rng.integers(0, 16, size=(4, 3)), "moments": rng.normal(size=5)}


class TestLifecycle:
    def test_round_and_device_round_lifecycle(self):
        with DeviceStateStore() as store:
            store.register_device("d0")
            store.register_device("d1")
            round_id = store.create_round(["d0", "d1"])
            assert store.get_round(round_id).status == "submitted"
            assert store.get_round(round_id).num_devices == 2

            for device_id in ("d0", "d1"):
                store.init_device_round(
                    round_id, device_id, "digest-a", "pool-a", _snapshot()
                )
            rows = store.device_rounds(round_id)
            assert [row.device_id for row in rows] == ["d0", "d1"]
            assert all(row.status == "pending" and row.attempts == 0 for row in rows)

            store.mark_running(round_id, "d0")
            assert store.get_device_round(round_id, "d0").status == "running"
            assert store.get_device_round(round_id, "d0").attempts == 1

            store.mark_done(round_id, "d0", _snapshot(1), {"flips": 3})
            row = store.get_device_round(round_id, "d0")
            assert row.status == "done"
            assert row.stats == {"flips": 3}

    def test_attempts_accumulate_across_retries(self):
        with DeviceStateStore() as store:
            store.register_device("d0")
            round_id = store.create_round(["d0"])
            store.init_device_round(round_id, "d0", "x", "y", None)
            for _ in range(3):
                store.mark_running(round_id, "d0")
                store.mark_failed(round_id, "d0", "boom")
            row = store.get_device_round(round_id, "d0")
            assert row.attempts == 3
            assert row.status == "pending"
            assert row.last_error == "boom"

    def test_mark_done_clears_last_error(self):
        with DeviceStateStore() as store:
            store.register_device("d0")
            round_id = store.create_round(["d0"])
            store.init_device_round(round_id, "d0", "x", "y", None)
            store.mark_running(round_id, "d0")
            store.mark_failed(round_id, "d0", "first attempt blew up")
            store.mark_running(round_id, "d0")
            store.mark_done(round_id, "d0", None, None)
            assert store.get_device_round(round_id, "d0").last_error is None

    def test_unfinished_rounds_and_status_transitions(self):
        with DeviceStateStore() as store:
            store.register_device("d0")
            first = store.create_round(["d0"])
            second = store.create_round(["d0"])
            assert store.unfinished_rounds() == [first, second]
            store.set_round_status(first, "done")
            assert store.unfinished_rounds() == [second]
            with pytest.raises(ValueError, match="unknown round status"):
                store.set_round_status(second, "exploded")

    def test_validation_errors(self):
        with DeviceStateStore() as store:
            with pytest.raises(KeyError):
                store.get_round(999)
            with pytest.raises(KeyError):
                store.get_device_round(1, "ghost")
            with pytest.raises(ValueError, match="at least one device"):
                store.create_round([])
            with pytest.raises(ValueError):
                DeviceStateStore(write_retries=0)


class TestSnapshotRoundTrip:
    def test_numpy_state_is_byte_exact(self):
        """Pickled blobs must round-trip numpy state losslessly — the
        bit-identity contract forbids any decimal-text detour."""
        with DeviceStateStore() as store:
            store.register_device("d0")
            round_id = store.create_round(["d0"])
            snapshot = _snapshot(7)
            store.init_device_round(round_id, "d0", "x", "y", snapshot)
            loaded = store.get_device_round(round_id, "d0").snapshot
            assert loaded["codes"].dtype == snapshot["codes"].dtype
            np.testing.assert_array_equal(loaded["codes"], snapshot["codes"])
            assert loaded["moments"].tobytes() == snapshot["moments"].tobytes()


class TestQuarantine:
    def test_quarantine_and_release(self):
        with DeviceStateStore() as store:
            store.register_device("d0")
            round_id = store.create_round(["d0"])
            store.init_device_round(round_id, "d0", "x", "y", None)
            store.mark_quarantined(round_id, "d0", "Traceback: kaboom")
            assert store.quarantined_devices() == {"d0": "Traceback: kaboom"}
            assert store.get_device_round(round_id, "d0").status == "quarantined"
            store.release_device("d0")
            assert store.quarantined_devices() == {}

    def test_quarantine_survives_reopen(self, tmp_path):
        """Durability: quarantine status and the persisted traceback must
        outlive the process (simulated by close + reopen)."""
        path = tmp_path / "fleet.db"
        with DeviceStateStore(path) as store:
            store.register_device("d0")
            round_id = store.create_round(["d0"])
            store.init_device_round(round_id, "d0", "x", "y", _snapshot())
            store.mark_quarantined(round_id, "d0", "poisoned")
        with DeviceStateStore(path) as reopened:
            assert reopened.quarantined_devices() == {"d0": "poisoned"}
            assert reopened.unfinished_rounds() == [round_id]
            row = reopened.get_device_round(round_id, "d0")
            assert row.status == "quarantined"
            np.testing.assert_array_equal(
                row.snapshot["codes"], _snapshot()["codes"]
            )

    def test_register_preserves_quarantine(self):
        with DeviceStateStore() as store:
            store.register_device("d0")
            store.quarantine_device("d0", "bad")
            store.register_device("d0")
            assert "d0" in store.quarantined_devices()


class TestWriteRetry:
    def test_transient_write_failure_is_retried(self):
        with DeviceStateStore(write_retries=5, retry_sleep=0.0) as store:
            failures = {"left": 2}

            def flaky(sql):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise sqlite3.OperationalError("injected: database is locked")

            store.before_write = flaky
            store.register_device("d0")
            store.before_write = None
            assert failures["left"] == 0
            round_id = store.create_round(["d0"])
            assert store.get_round(round_id).num_devices == 1

    def test_persistent_write_failure_raises_store_error(self):
        with DeviceStateStore(write_retries=3, retry_sleep=0.0) as store:
            calls = {"n": 0}

            def always_fail(sql):
                calls["n"] += 1
                raise sqlite3.OperationalError("disk I/O error")

            store.before_write = always_fail
            with pytest.raises(StoreError, match="after 3 attempts"):
                store.register_device("d0")
            assert calls["n"] == 3
