"""Make the shared golden scenario module importable from the test file."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
