"""Regenerate the committed golden-regression fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_fixtures.py

Only regenerate when an *intentional* numerics change lands (and say so in the
commit); the whole point of the fixtures is that fast-path PRs which silently
drift the float64 flip decisions, table accuracies or stream splits are caught
by ``tests/golden/test_golden_regression.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(HERE.parent.parent / "src"))

import numpy as np

from repro import runtime


def main() -> None:
    runtime.set_dtype(np.float64)
    import golden_scenario as gs
    from repro.eval import ParallelEvaluator

    data = gs.build_dataset()

    # 1. Float64 flip decisions of one edge calibration run.
    deployment = gs.build_packaged_deployment(data)
    pool = gs.build_calibration_pool(data)
    initial_digest = deployment.qmodel.codes_digest()
    stats, epoch_digests = gs.calibrate_with_digests(deployment.clone(), pool)
    flip_decisions = {
        "initial_digest": initial_digest,
        "flips_per_epoch": stats.flips_per_epoch,
        "reverted_epochs": stats.reverted_epochs,
        "pool_accuracy": stats.pool_accuracy,
        "epoch_digests": epoch_digests,
        "final_digest": epoch_digests[-1],
    }

    # 2. Table-5-style accuracies (method × bit-width cells).
    backbone = gs.build_backbone(data)
    results = ParallelEvaluator(num_batches=gs.NUM_BATCHES, workers=1).run(
        gs.build_accuracy_specs(), data, backbone
    )
    accuracies = [
        {
            "method": result.method,
            "bits": result.bits,
            "source": result.source,
            "target": result.target,
            "seed": result.seed,
            "batch_accuracies": result.batch_accuracies,
            "average_accuracy": result.average_accuracy,
        }
        for result in results
    ]

    # 3. Stream-split composition.
    stream_splits = gs.describe_split(gs.build_split_scenario(data))

    fixture = {
        "meta": {
            "dtype": "float64",
            "seed": gs.SEED,
            "generator": "tests/golden/generate_fixtures.py",
            "note": (
                "Pinned float64 reference numbers; regenerate only on an "
                "intentional numerics change."
            ),
        },
        "flip_decisions": flip_decisions,
        "accuracies": accuracies,
        "stream_splits": stream_splits,
    }
    gs.FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    gs.FIXTURE_PATH.write_text(json.dumps(fixture, indent=2) + "\n")
    print(f"wrote {gs.FIXTURE_PATH}")

    # 4. Drift-zoo scenario digests: one pin per registered family.  Kept in
    # a separate fixture file (not the experiment store's golden-kind rows,
    # which `perf_report verify-migration` constrains to golden.json exactly).
    scenario_fixture = {
        "meta": {
            "dtype": "float64",
            "seed": gs.SEED,
            "num_batches": gs.NUM_BATCHES,
            "generator": "tests/golden/generate_fixtures.py",
            "note": (
                "Pinned drift-zoo scenario digests; regenerate only on an "
                "intentional composition change."
            ),
        },
        "families": gs.describe_scenario_grid(data),
    }
    gs.SCENARIO_FIXTURE_PATH.write_text(
        json.dumps(scenario_fixture, indent=2) + "\n"
    )
    print(f"wrote {gs.SCENARIO_FIXTURE_PATH}")

    # Re-pin the golden digests in the experiment store.  This is the ONE
    # tool allowed to pass repin=True: pinned rows reject changed digests
    # everywhere else, so golden regeneration stays an explicit act.
    from repro.results import ResultsStore, ingest_golden_digests

    store_path = HERE.parent.parent / "BENCH_perf.sqlite"
    with ResultsStore(store_path) as store:
        pinned = ingest_golden_digests(store, fixture, repin=True)
    print(f"re-pinned {len(pinned)} golden digests in {store_path}")
    print(json.dumps(fixture["flip_decisions"], indent=2))


if __name__ == "__main__":
    main()
