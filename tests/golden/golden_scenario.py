"""Shared scenario builders for the golden-regression layer.

Both the committed-fixture generator (``generate_fixtures.py``) and the test
suite (``test_golden_regression.py``) build their scenarios through this
module, so the pinned numbers and the asserted numbers always come from the
same code path.  Everything here is a pure function of the hard-coded seeds at
float64 — the paper-grade precision the goldens are pinned at.
"""

from __future__ import annotations

import functools
import hashlib
from pathlib import Path

import numpy as np

from repro.baselines import ER
from repro.core.pipeline import QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.eval import QCoreMethod, build_specs
from repro.models import build_model

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden.json"

SEED = 0
NUM_BATCHES = 3

GOLDEN_TS = SyntheticTimeSeriesConfig(
    num_classes=3, num_domains=3, channels=3, length=16,
    train_per_class=10, val_per_class=2, test_per_class=4,
)

#: Module-level factories so the parallel-sharded path can unpickle them.
ER_FACTORY = functools.partial(
    ER, buffer_size=8, adapt_epochs=1, lr=0.05, batch_size=16,
    initial_calibration_epochs=2, seed=SEED,
)
QCORE_FACTORY = functools.partial(
    QCoreMethod, qcore_size=12, train_epochs=4, calibration_epochs=4,
    edge_calibration_epochs=2, lr=0.05, batch_size=16, seed=SEED,
)


def array_digest(values: np.ndarray) -> str:
    """Stable SHA-256 of an array's shape and float64/int64 bytes."""
    values = np.ascontiguousarray(values)
    if values.dtype.kind == "f":
        values = values.astype(np.float64)
    elif values.dtype.kind in "iub":
        values = values.astype(np.int64)
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode())
    digest.update(values.tobytes())
    return digest.hexdigest()


def build_dataset():
    return make_dsa_surrogate(seed=SEED, config=GOLDEN_TS)


def build_packaged_deployment(data, qat_fused=True):
    """One server-side packaged deployment: trained model + BF net + QCore.

    ``qat_fused`` selects the flat-arena STE engine for the server-side QAT
    calibration (the default everywhere); the goldens assert both settings
    produce the pinned numbers, so the fused engine cannot silently drift.
    """
    model = build_model(
        "InceptionTime", data.input_shape, data.num_classes,
        rng=np.random.default_rng(SEED),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=12, train_epochs=3, calibration_epochs=4,
        edge_calibration_epochs=2, seed=SEED, qat_fused=qat_fused,
    )
    framework.fit(model, data[data.domain_names[0]].train)
    return framework.deploy(bits=4)


def build_calibration_pool(data):
    """The fixed calibration pool the flip-decision goldens are pinned on."""
    target = data[data.domain_names[1]].train
    return target.subset(np.arange(min(16, len(target))))


def calibrate_with_digests(deployment, pool):
    """Run edge calibration, recording the codes digest after every epoch."""
    digests = []

    def callback(epoch, qmodel):
        digests.append(qmodel.codes_digest())

    stats = deployment.calibrator.calibrate(
        deployment.qmodel, pool, epoch_callback=callback
    )
    return stats, digests


def build_backbone(data):
    """The trained source-domain backbone every accuracy run starts from."""
    from repro import nn
    from repro.nn.training import train_classifier

    rng = np.random.default_rng(SEED)
    model = build_model("InceptionTime", data.input_shape, data.num_classes, rng=rng)
    train_classifier(
        model, nn.SGD(model.parameters(), lr=0.05, momentum=0.9),
        data["Subj. 1"].train.features, data["Subj. 1"].train.labels,
        epochs=4, batch_size=16, rng=rng,
    )
    return model


def build_accuracy_specs():
    """Table-5-style cells: (method × bit-width) on one source→target pair."""
    return build_specs(
        {"ER": ER_FACTORY, "QCore": QCORE_FACTORY},
        pairs=[("Subj. 1", "Subj. 2")],
        bits_list=(2, 4),
        seed=SEED,
    )


def build_split_scenario(data):
    """The stream split whose batch composition the goldens pin.

    Built through :class:`ContinualEvaluator` so the pinned split is exactly
    the one every evaluated run (serial or sharded) sees.
    """
    from repro.eval import ContinualEvaluator

    evaluator = ContinualEvaluator(num_batches=NUM_BATCHES, seed=SEED)
    return evaluator.build_scenario(data, "Subj. 1", "Subj. 2")


def describe_split(scenario) -> dict:
    """JSON-friendly pin of a scenario's batch/test-slice composition."""
    return {
        "source": scenario.source.domain,
        "target": scenario.target_name,
        "num_batches": scenario.num_batches,
        "batches": [
            {
                "index": batch.index,
                "size": len(batch.data),
                "labels": [int(l) for l in batch.data.labels],
                "features_digest": array_digest(batch.data.features),
                "test_size": len(batch.test),
                "test_labels": [int(l) for l in batch.test.labels],
                "test_features_digest": array_digest(batch.test.features),
            }
            for batch in scenario.batches
        ],
    }


SCENARIO_FIXTURE_PATH = Path(__file__).parent / "fixtures" / "scenarios.json"


def build_scenario_grid(data):
    """One spec per registered drift-zoo family on the golden dataset."""
    from repro.data.scenarios import default_scenario_grid

    return default_scenario_grid(data, num_batches=NUM_BATCHES, seed=SEED)


def describe_scenario_grid(data) -> dict:
    """JSON-friendly pins for every family: scenario digest + first-batch data.

    The scenario digest covers the whole stream; the first batch's feature
    digests and label lists are pinned separately so a digest mismatch is
    diagnosable (labels are readable, digests say which split moved).
    """
    from repro.data.scenarios import build_scenario, scenario_digest

    entries = {}
    for spec in build_scenario_grid(data):
        scenario = build_scenario(data, spec)
        first = scenario.batches[0]
        entries[spec.family] = {
            "description": scenario.description,
            "scenario_digest": scenario_digest(scenario),
            "batch_sizes": [len(b.data) for b in scenario.batches],
            "test_sizes": [len(b.test) for b in scenario.batches],
            "first_batch_features_digest": array_digest(first.data.features),
            "first_batch_labels": [int(l) for l in first.data.labels],
            "first_test_features_digest": array_digest(first.test.features),
            "first_test_labels": [int(l) for l in first.test.labels],
        }
    return entries
