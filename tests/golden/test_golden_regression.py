"""Golden-regression suite: pinned float64 numbers for the paper-facing paths.

The committed fixture (``fixtures/golden.json``, regenerated only via
``generate_fixtures.py``) pins flip decisions, table-5-style accuracies and
stream splits for a fixed seed.  Every execution strategy the runtime offers —
per-tensor serial, fused, fleet-batched, parallel-sharded — must reproduce the
same pinned numbers, so a future fast-path PR that silently changes paper
numerics fails here instead of shipping.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import golden_scenario as gs
from repro import runtime
from repro.eval import ParallelEvaluator
from repro.fleet import Fleet, FleetCalibrator


@pytest.fixture(scope="module")
def fixture():
    assert gs.FIXTURE_PATH.exists(), (
        "golden fixture missing — run: PYTHONPATH=src python tests/golden/generate_fixtures.py"
    )
    return json.loads(gs.FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def data():
    return gs.build_dataset()


@pytest.fixture(scope="module")
def packaged(data):
    return gs.build_packaged_deployment(data)


def test_suite_runs_at_float64(fixture):
    """The goldens are float64 pins; the suite-wide fixture must hold."""
    assert runtime.get_dtype() == np.float64
    assert fixture["meta"]["dtype"] == "float64"


class TestFlipDecisionGoldens:
    def _assert_matches(self, fixture, stats, digests, initial_digest):
        golden = fixture["flip_decisions"]
        assert initial_digest == golden["initial_digest"]
        assert stats.flips_per_epoch == golden["flips_per_epoch"]
        assert stats.reverted_epochs == golden["reverted_epochs"]
        assert stats.pool_accuracy == golden["pool_accuracy"]
        assert digests == golden["epoch_digests"]

    def test_fused_serial_calibration(self, fixture, data, packaged):
        deployment = packaged.clone()
        assert deployment.calibrator.fused
        stats, digests = gs.calibrate_with_digests(
            deployment, gs.build_calibration_pool(data)
        )
        self._assert_matches(fixture, stats, digests, packaged.qmodel.codes_digest())

    def test_per_tensor_serial_calibration(self, fixture, data, packaged):
        deployment = packaged.clone()
        deployment.calibrator.fused = False
        stats, digests = gs.calibrate_with_digests(
            deployment, gs.build_calibration_pool(data)
        )
        self._assert_matches(fixture, stats, digests, packaged.qmodel.codes_digest())

    def test_fleet_batched_calibration(self, fixture, data, packaged):
        """Every device of a replicated fleet given the pinned pool must walk
        the pinned trajectory — one batched inference or not."""
        fleet = Fleet.replicate(packaged, 3, seed=0)
        pool = gs.build_calibration_pool(data)
        digests = {device_id: [] for device_id in fleet.ids}
        callbacks = {
            device_id: (lambda e, qm, _d=digests[device_id]: _d.append(qm.codes_digest()))
            for device_id in fleet.ids
        }
        result = FleetCalibrator().calibrate(
            fleet, pools={i: pool for i in fleet.ids}, epoch_callbacks=callbacks
        )
        for device_id in fleet.ids:
            self._assert_matches(
                fixture,
                result.stats[device_id],
                digests[device_id],
                packaged.qmodel.codes_digest(),
            )


class TestFusedQATGoldens:
    def test_serial_qat_packaging_matches_pinned_digest(self, fixture, data, packaged):
        """The per-tensor STE loop and the fused arena engine must package
        byte-identical deployments (same integer codes, same BF supervision),
        both equal to the committed golden."""
        serial = gs.build_packaged_deployment(data, qat_fused=False)
        golden = fixture["flip_decisions"]["initial_digest"]
        assert packaged.qmodel.codes_digest() == golden
        assert serial.qmodel.codes_digest() == golden
        # The BF networks were trained on identical (features, target) pairs,
        # so their quantized weights agree exactly as well.
        fused_state = packaged.bitflip.state_dict()
        for name, values in serial.bitflip.state_dict().items():
            np.testing.assert_array_equal(fused_state[name], values)


class TestAccuracyGoldens:
    def _assert_matches(self, results, fixture):
        golden = fixture["accuracies"]
        assert len(results) == len(golden)
        for result, pinned in zip(results, golden):
            assert result.method == pinned["method"]
            assert result.bits == pinned["bits"]
            assert result.source == pinned["source"]
            assert result.target == pinned["target"]
            assert result.batch_accuracies == pinned["batch_accuracies"]
            assert result.average_accuracy == pinned["average_accuracy"]

    @pytest.fixture(scope="class")
    def backbone(self, data):
        return gs.build_backbone(data)

    def test_serial_sweep_matches_goldens(self, fixture, data, backbone):
        results = ParallelEvaluator(num_batches=gs.NUM_BATCHES, workers=1).run(
            gs.build_accuracy_specs(), data, backbone
        )
        self._assert_matches(results, fixture)

    def test_parallel_sharded_sweep_matches_goldens(self, fixture, data, backbone):
        results = ParallelEvaluator(
            num_batches=gs.NUM_BATCHES, workers=2, mp_context="fork"
        ).run(gs.build_accuracy_specs(), data, backbone)
        self._assert_matches(results, fixture)


class TestStreamSplitGoldens:
    def test_split_composition_matches_goldens(self, fixture, data):
        observed = gs.describe_split(gs.build_split_scenario(data))
        assert observed == fixture["stream_splits"]
