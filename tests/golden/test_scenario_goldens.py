"""Golden pins for the drift zoo: every family's composition is frozen.

``fixtures/scenarios.json`` (regenerated only by ``generate_fixtures.py``)
pins one ``scenario_digest`` per registered family plus the first batch's
feature digests and label lists.  Registry and fixture must cover exactly
the same families — adding a family without pinning it (or deleting one
while its pin lingers) fails here, and any composition drift is caught with
a diagnosable field, not just a changed hash.
"""

from __future__ import annotations

import json

import pytest

import golden_scenario as gs
from repro.data.scenarios import (
    build_scenario,
    scenario_digest,
    scenario_families,
)


@pytest.fixture(scope="module")
def fixture():
    assert gs.SCENARIO_FIXTURE_PATH.exists(), (
        "scenario golden fixture missing — run: "
        "PYTHONPATH=src python tests/golden/generate_fixtures.py"
    )
    return json.loads(gs.SCENARIO_FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def data():
    return gs.build_dataset()


@pytest.fixture(scope="module")
def rebuilt(data):
    return {
        spec.family: build_scenario(data, spec)
        for spec in gs.build_scenario_grid(data)
    }


def test_fixture_covers_exactly_the_registry(fixture):
    assert set(fixture["families"]) == set(scenario_families())


def test_fixture_meta_matches_golden_protocol(fixture):
    assert fixture["meta"]["dtype"] == "float64"
    assert fixture["meta"]["seed"] == gs.SEED
    assert fixture["meta"]["num_batches"] == gs.NUM_BATCHES


@pytest.mark.parametrize("family", sorted(scenario_families()))
def test_family_reproduces_its_pins(fixture, rebuilt, family):
    pinned = fixture["families"][family]
    scenario = rebuilt[family]
    first = scenario.batches[0]
    assert scenario.description == pinned["description"]
    assert [len(b.data) for b in scenario.batches] == pinned["batch_sizes"]
    assert [len(b.test) for b in scenario.batches] == pinned["test_sizes"]
    assert [int(l) for l in first.data.labels] == pinned["first_batch_labels"]
    assert [int(l) for l in first.test.labels] == pinned["first_test_labels"]
    assert gs.array_digest(first.data.features) == pinned["first_batch_features_digest"]
    assert gs.array_digest(first.test.features) == pinned["first_test_features_digest"]
    assert scenario_digest(scenario) == pinned["scenario_digest"]


def test_pinned_digests_are_family_unique(fixture):
    digests = [e["scenario_digest"] for e in fixture["families"].values()]
    assert len(set(digests)) == len(digests)
