"""Make the ``tools`` package importable regardless of pytest invocation dir."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
