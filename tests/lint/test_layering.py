"""The shipped layer DAG is the single source of truth.

``docs/architecture.md`` embeds the DAG in a fenced ``layers`` block;
this test asserts it matches :data:`tools.lint.config.LAYERS` exactly, so
the prose architecture page can never drift from what CI enforces.
"""

from __future__ import annotations

import re

from tools.lint import config

ARCH_MD = config.REPO_ROOT / "docs" / "architecture.md"

_BLOCK_RE = re.compile(r"```layers\n(?P<body>.*?)```", re.DOTALL)


def _documented_layers():
    match = _BLOCK_RE.search(ARCH_MD.read_text())
    assert match, "docs/architecture.md is missing its fenced ```layers block"
    layers = []
    for line in match.group("body").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        layers.append(tuple(part.strip() for part in line.split("|")))
    return tuple(layers)


def test_architecture_md_layer_block_matches_config() -> None:
    """The docs' layer DAG equals the linter's, layer by layer."""
    assert _documented_layers() == config.LAYERS


def test_every_layer_package_resolves() -> None:
    """Each DAG entry maps onto itself through package_of (sanity)."""
    for group in config.LAYERS:
        for package in group:
            assert config.package_of(package + ".x") == package


def test_allowed_imports_are_strictly_downward() -> None:
    """allowed_imports() grants exactly the strictly-lower layers."""
    allowed = config.allowed_imports()
    for rank, group in enumerate(config.LAYERS):
        lower = {p for g in config.LAYERS[:rank] for p in g}
        for package in group:
            assert allowed[package] == lower


def test_exemptions_reference_ranked_packages() -> None:
    """Every layering exemption names known packages and carries a reason."""
    for (importer, imported), reason in config.LAYERING_EXEMPTIONS.items():
        assert config.layer_rank(importer) is not None, importer
        assert config.layer_rank(imported) is not None, imported
        assert reason.strip(), f"exemption {importer} -> {imported} has no reason"
