"""The gate itself: the linted universe stays at zero findings.

This is the test-suite twin of CI's ``python -m tools.lint src benchmarks
tools`` step — a regression anywhere in the repo (or an engine change that
starts flagging sanctioned sites) fails the test run too, with the exact
``file:line:col: [rule] message`` output in the assertion.
"""

from __future__ import annotations

from tools.lint import config, run_paths


def test_repo_lints_clean() -> None:
    """src/, benchmarks/ and tools/ produce zero findings."""
    paths = [config.REPO_ROOT / p for p in ("src", "benchmarks", "tools")]
    findings, file_count = run_paths(paths)
    assert file_count > 100, "lint walked suspiciously few files"
    assert not findings, "\n" + "\n".join(f.format() for f in findings)


def test_selfcheck_passes() -> None:
    """The fixture-driven gate verification holds under pytest as well."""
    from tools.lint.selfcheck import run_selfcheck

    assert run_selfcheck() == 0
