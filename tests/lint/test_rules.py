"""Fixture-pair tests: every rule fires on its seeded violation and stays
quiet on the clean sibling.

The corpus lives in ``tools/lint/fixtures/`` and is shared with
``python -m tools.lint --selfcheck`` (the CI gate-verification step), so the
pytest suite and the CI selfcheck can never drift apart.
"""

from __future__ import annotations

import pytest

from tools.lint import all_rule_names
from tools.lint.selfcheck import check_fixture, iter_fixture_cases

CASES = list(iter_fixture_cases())


def test_corpus_is_present() -> None:
    """Every rule category has at least one fail fixture and one pass fixture."""
    fails = [c for c in CASES if c[2]]
    passes = [c for c in CASES if not c[2]]
    assert len(fails) >= 8, "expected a fail fixture per rule category"
    assert len(passes) >= 8, "expected a pass fixture per rule category"


def test_every_checked_rule_has_a_fail_fixture() -> None:
    """Each registered per-file rule is exercised by some seeded violation.

    ``doc-links`` is project-wide (covered by the selfcheck's temp-dir
    probe) and ``parse-error`` is the engine's syntax guard, so neither
    needs a corpus fixture.
    """
    expected_somewhere = set()
    for _, _, expected in CASES:
        expected_somewhere.update(expected)
    uncovered = set(all_rule_names()) - expected_somewhere - {"doc-links", "parse-error"}
    assert not uncovered, f"rules without a fail fixture: {sorted(uncovered)}"


@pytest.mark.parametrize(
    "fixture, rel_path, expected",
    CASES,
    ids=[case[0].stem for case in CASES],
)
def test_fixture(fixture, rel_path, expected) -> None:
    """Found rule set must equal the fixture's expected rule set exactly."""
    errors = check_fixture(fixture, rel_path, expected)
    assert not errors, "\n".join(errors)
