"""Suppression-syntax semantics: reasons are mandatory, waivers are narrow."""

from __future__ import annotations

from pathlib import Path

from tools.lint.engine import SUPPRESSION_RULE, lint_file, parse_suppressions

# A library path so the dtype rule applies; the actual file never exists —
# every test passes source explicitly.
REL_PATH = "src/repro/core/_suppression_test.py"
DUMMY = Path("_suppression_test.py")

VIOLATION = 'import numpy as np\nx = np.zeros(3, dtype="float64")'


def _lint(source: str):
    return lint_file(DUMMY, rel_path=REL_PATH, source=source)


def test_reasoned_suppression_silences_the_finding() -> None:
    """A disable with a reason removes the finding and adds nothing."""
    source = VIOLATION + "  # repro-lint: disable=dtype-discipline -- test: documented exemption\n"
    assert _lint(source) == []


def test_reasonless_suppression_is_a_finding_and_does_not_suppress() -> None:
    """No reason → hygiene finding AND the underlying finding survives."""
    source = VIOLATION + "  # repro-lint: disable=dtype-discipline\n"
    rules = sorted(f.rule for f in _lint(source))
    assert rules == ["dtype-discipline", SUPPRESSION_RULE]


def test_unknown_rule_suppression_is_a_finding() -> None:
    """Disabling a rule that does not exist is flagged, not ignored."""
    source = VIOLATION + "  # repro-lint: disable=no-such-rule -- whatever\n"
    rules = sorted(f.rule for f in _lint(source))
    assert rules == ["dtype-discipline", SUPPRESSION_RULE]


def test_unused_suppression_is_a_finding() -> None:
    """A disable on a clean line is dead policy and must be removed."""
    source = "x = 1  # repro-lint: disable=dtype-discipline -- stale waiver\n"
    findings = _lint(source)
    assert [f.rule for f in findings] == [SUPPRESSION_RULE]
    assert "unused" in findings[0].message


def test_empty_rule_list_is_a_finding() -> None:
    """`disable=` with nothing after it is malformed."""
    source = "x = 1  # repro-lint: disable= -- because\n"
    assert [f.rule for f in _lint(source)] == [SUPPRESSION_RULE]


def test_multi_rule_suppression() -> None:
    """One comment may waive several rules on its line, with one reason."""
    source = (
        "import numpy as np\n"
        'x = np.asarray(np.random.default_rng(0).normal(3), dtype="float64")'
        "  # repro-lint: disable=dtype-discipline,rng-discipline -- test: both on one line\n"
    )
    assert _lint(source) == []


def test_suppression_only_covers_its_own_line() -> None:
    """A waiver on line N does not leak to violations on other lines."""
    source = (
        "import numpy as np\n"
        'a = np.zeros(3, dtype="float64")  # repro-lint: disable=dtype-discipline -- test: line-scoped\n'
        'b = np.zeros(3, dtype="float64")\n'
    )
    findings = _lint(source)
    assert [f.rule for f in findings] == ["dtype-discipline"]
    assert findings[0].line == 3


def test_hash_inside_string_is_not_a_comment() -> None:
    """Tokenize-based parsing ignores repro-lint text inside string literals."""
    source = 'x = "# repro-lint: disable=dtype-discipline"\n'
    suppressions, findings = parse_suppressions(source, REL_PATH)
    assert suppressions == [] and findings == []
