"""Tests for the classifier surrogates (shapes, training, registry, quantization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.models import (
    InceptionTimeSurrogate,
    MLPClassifier,
    OmniScaleCNNSurrogate,
    ResNetSurrogate,
    VGGSurrogate,
    build_model,
)
from repro.nn.training import evaluate, train_classifier
from repro.quantization import quantize_model

TINY_TS = SyntheticTimeSeriesConfig(
    num_classes=4, num_domains=2, channels=3, length=20,
    train_per_class=12, val_per_class=2, test_per_class=4,
)


class TestForwardShapes:
    def test_inception_time(self, rng):
        model = InceptionTimeSurrogate(in_channels=3, num_classes=5, rng=rng)
        out = model.forward(rng.normal(size=(4, 3, 24)))
        assert out.shape == (4, 5)

    def test_omniscale(self, rng):
        model = OmniScaleCNNSurrogate(in_channels=3, num_classes=5, rng=rng)
        out = model.forward(rng.normal(size=(4, 3, 24)))
        assert out.shape == (4, 5)

    def test_resnet(self, rng):
        model = ResNetSurrogate(in_channels=3, num_classes=7, rng=rng)
        out = model.forward(rng.normal(size=(2, 3, 12, 12)))
        assert out.shape == (2, 7)

    def test_vgg(self, rng):
        model = VGGSurrogate(in_channels=3, num_classes=7, image_size=12, rng=rng)
        out = model.forward(rng.normal(size=(2, 3, 12, 12)))
        assert out.shape == (2, 7)

    def test_mlp(self, rng):
        model = MLPClassifier(10, 3, rng=rng)
        assert model.forward(rng.normal(size=(5, 10))).shape == (5, 3)

    def test_backward_runs_end_to_end(self, rng):
        model = InceptionTimeSurrogate(in_channels=2, num_classes=3, rng=rng)
        x = rng.normal(size=(3, 2, 16))
        out = model.forward(x)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert all(np.any(p.grad != 0) for p in model.parameters() if p.size > 2)


class TestTrainability:
    def test_inception_time_learns_synthetic_dsa(self, rng):
        data = make_dsa_surrogate(seed=0, config=TINY_TS)
        train = data["Subj. 1"].train
        model = InceptionTimeSurrogate(3, TINY_TS.num_classes, branch_channels=4, depth=1, rng=rng)
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        train_classifier(model, optimizer, train.features, train.labels, epochs=15, batch_size=16, rng=rng)
        acc = evaluate(model, train.features, train.labels)
        assert acc > 0.6

    def test_quantized_surrogate_keeps_most_accuracy_at_8bit(self, rng):
        data = make_dsa_surrogate(seed=0, config=TINY_TS)
        train = data["Subj. 1"].train
        model = InceptionTimeSurrogate(3, TINY_TS.num_classes, branch_channels=4, depth=1, rng=rng)
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        train_classifier(model, optimizer, train.features, train.labels, epochs=15, batch_size=16, rng=rng)
        fp_acc = evaluate(model, train.features, train.labels)
        q8 = quantize_model(model, bits=8).evaluate(train.features, train.labels)
        q2 = quantize_model(model, bits=2).evaluate(train.features, train.labels)
        assert q8 >= fp_acc - 0.15
        assert q2 <= q8 + 1e-9


class TestRegistry:
    def test_build_all_registered_models(self, rng):
        ts_input = (3, 20)
        img_input = (3, 12, 12)
        assert build_model("InceptionTime", ts_input, 5, rng=rng).forward(
            rng.normal(size=(2, 3, 20))
        ).shape == (2, 5)
        assert build_model("OmniScaleCNN", ts_input, 5, rng=rng).forward(
            rng.normal(size=(2, 3, 20))
        ).shape == (2, 5)
        assert build_model("ResNet18", img_input, 4, rng=rng).forward(
            rng.normal(size=(2, 3, 12, 12))
        ).shape == (2, 4)
        assert build_model("VGG16", img_input, 4, rng=rng).forward(
            rng.normal(size=(2, 3, 12, 12))
        ).shape == (2, 4)
        assert build_model("MLP", (8,), 3, rng=rng).forward(
            rng.normal(size=(2, 8))
        ).shape == (2, 3)

    def test_unknown_model_raises(self, rng):
        with pytest.raises(KeyError):
            build_model("Transformer", (3, 20), 5, rng=rng)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            build_model("InceptionTime", (3, 20, 20), 5, rng=rng)
        with pytest.raises(ValueError):
            build_model("ResNet18", (3, 20), 5, rng=rng)

    def test_weighted_layers_exposed_for_bitflip(self, rng):
        model = build_model("InceptionTime", (3, 20), 5, rng=rng)
        layers = model.weighted_layers()
        assert len(layers) >= 4
        for layer in layers:
            assert layer.weight is not None
