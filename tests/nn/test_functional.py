"""Tests for the im2col/col2im fast paths (cached indices, bincount scatter)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import runtime
from repro.nn import functional as F


def _col2im_1d_reference(cols, input_shape, kernel_size, stride, padding):
    """The original ``np.add.at`` scatter, kept as the correctness oracle."""
    n, c, length = input_shape
    padded_len = length + 2 * padding
    out_len = (padded_len - kernel_size) // stride + 1
    grad_padded = np.zeros((n, c, padded_len), dtype=np.float64)
    cols = cols.reshape(n, out_len, c, kernel_size).transpose(0, 2, 1, 3)
    starts = np.arange(out_len) * stride
    idx = starts[:, None] + np.arange(kernel_size)[None, :]
    np.add.at(grad_padded, (slice(None), slice(None), idx), cols)
    if padding > 0:
        return grad_padded[:, :, padding:-padding]
    return grad_padded


def _col2im_2d_reference(cols, input_shape, kernel_size, stride, padding):
    n, c, h, w = input_shape
    ph, pw = h + 2 * padding, w + 2 * padding
    out_h = (ph - kernel_size) // stride + 1
    out_w = (pw - kernel_size) // stride + 1
    grad_padded = np.zeros((n, c, ph, pw), dtype=np.float64)
    cols = cols.reshape(n, out_h, out_w, c, kernel_size, kernel_size)
    cols = cols.transpose(0, 3, 1, 4, 2, 5)
    row_idx = np.arange(out_h)[:, None] * stride + np.arange(kernel_size)[None, :]
    col_idx = np.arange(out_w)[:, None] * stride + np.arange(kernel_size)[None, :]
    np.add.at(
        grad_padded,
        (slice(None), slice(None), row_idx[:, :, None, None], col_idx[None, None, :, :]),
        cols,
    )
    if padding > 0:
        return grad_padded[:, :, padding:-padding, padding:-padding]
    return grad_padded


class TestCol2ImBincount:
    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [
            ((2, 3, 9), 3, 1, 1),
            ((1, 2, 8), 3, 2, 1),
            ((3, 1, 7), 1, 1, 0),
            ((2, 4, 12), 5, 2, 2),
        ],
    )
    def test_matches_add_at_reference_1d(self, rng, shape, kernel, stride, padding):
        n, c, length = shape
        out_len = (length + 2 * padding - kernel) // stride + 1
        cols = rng.normal(size=(n, out_len, c * kernel))
        fast = F.col2im_1d(cols, shape, kernel, stride, padding)
        reference = _col2im_1d_reference(cols, shape, kernel, stride, padding)
        np.testing.assert_allclose(fast, reference, rtol=1e-12, atol=0)

    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [
            ((2, 2, 6, 6), 3, 1, 1),
            ((1, 3, 8, 8), 3, 2, 1),
            ((2, 1, 5, 5), 1, 1, 0),
        ],
    )
    def test_matches_add_at_reference_2d(self, rng, shape, kernel, stride, padding):
        n, c, h, w = shape
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
        cols = rng.normal(size=(n, out_h * out_w, c * kernel * kernel))
        fast = F.col2im_2d(cols, shape, kernel, stride, padding)
        reference = _col2im_2d_reference(cols, shape, kernel, stride, padding)
        np.testing.assert_allclose(fast, reference, rtol=1e-12, atol=0)

    def test_im2col_col2im_adjoint_1d(self, rng):
        """<im2col(x), cols> == <x, col2im(cols)> — the defining adjoint identity."""
        x = rng.normal(size=(2, 3, 10))
        cols = rng.normal(size=(2, 10, 9))  # kernel 3, stride 1, padding 1
        lhs = float(np.sum(F.im2col_1d(x, 3, 1, 1) * cols))
        rhs = float(np.sum(x * F.col2im_1d(cols, x.shape, 3, 1, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_output_follows_runtime_dtype(self, rng):
        cols64 = rng.normal(size=(1, 5, 4))  # kernel 2, stride 1 over length 6
        with runtime.use_dtype(np.float32):
            out = F.col2im_1d(cols64.astype(np.float32), (1, 2, 6), 2, 1, 0)
            assert out.dtype == np.float32
        out64 = F.col2im_1d(cols64, (1, 2, 6), 2, 1, 0)
        assert out64.dtype == np.float64


class TestIndexCaching:
    def test_patch_indices_are_memoised(self):
        first = F._patch_indices_1d(13, 3, 2)
        second = F._patch_indices_1d(13, 3, 2)
        assert first is second

    def test_cached_indices_are_read_only(self):
        idx = F._patch_indices_1d(7, 3, 1)
        with pytest.raises(ValueError):
            idx[0, 0] = 99
        positions = F._scatter_positions_2d(4, 4, 3, 1, 8)
        with pytest.raises(ValueError):
            positions[0] = 1

    def test_different_geometries_get_different_indices(self):
        assert F._patch_indices_1d(5, 3, 1)[-1, -1] == 6
        assert F._patch_indices_1d(5, 3, 2)[-1, -1] == 10
