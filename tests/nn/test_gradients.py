"""Numerical gradient checks for every layer in the numpy substrate.

These checks compare analytic backward passes against central finite
differences.  They are the foundation the rest of the reproduction rests on:
if gradients are wrong, the full-precision training, QAT calibration and the
bit-flipping supervision signal are all wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def _numeric_grad_wrt_input(layer: nn.Module, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of sum(layer(x)) with respect to ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(np.sum(layer.forward(x)))
        flat[i] = original - eps
        minus = float(np.sum(layer.forward(x)))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def _numeric_grad_wrt_param(layer: nn.Module, x: np.ndarray, param, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of sum(layer(x)) with respect to ``param``."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(np.sum(layer.forward(x)))
        flat[i] = original - eps
        minus = float(np.sum(layer.forward(x)))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def _check_layer(layer: nn.Module, x: np.ndarray, atol: float = 1e-6) -> None:
    """Assert analytic input and parameter gradients match finite differences."""
    layer.train()
    out = layer.forward(x)
    layer.zero_grad()
    grad_in = layer.backward(np.ones_like(out))
    num_grad_in = _numeric_grad_wrt_input(layer, x)
    np.testing.assert_allclose(grad_in, num_grad_in, atol=atol, rtol=1e-4)
    # Re-run forward/backward so parameter gradients correspond to the same input.
    layer.zero_grad()
    out = layer.forward(x)
    layer.backward(np.ones_like(out))
    for param in layer.parameters():
        numeric = _numeric_grad_wrt_param(layer, x, param)
        np.testing.assert_allclose(param.grad, numeric, atol=atol, rtol=1e-4)


def test_dense_gradients(rng):
    layer = nn.Dense(5, 4, rng=rng)
    x = rng.normal(size=(3, 5))
    _check_layer(layer, x)


def test_dense_rejects_bad_input_shape(rng):
    layer = nn.Dense(5, 4, rng=rng)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(3, 6)))


def test_conv1d_gradients(rng):
    layer = nn.Conv1d(2, 3, kernel_size=3, rng=rng)
    x = rng.normal(size=(2, 2, 7))
    _check_layer(layer, x)


def test_conv1d_stride_and_padding(rng):
    layer = nn.Conv1d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
    x = rng.normal(size=(2, 2, 8))
    out = layer.forward(x)
    assert out.shape == (2, 3, 4)
    _check_layer(layer, x)


def test_conv2d_gradients(rng):
    layer = nn.Conv2d(2, 3, kernel_size=3, rng=rng)
    x = rng.normal(size=(2, 2, 5, 5))
    _check_layer(layer, x)


def test_conv2d_stride(rng):
    layer = nn.Conv2d(1, 2, kernel_size=3, stride=2, padding=1, rng=rng)
    x = rng.normal(size=(1, 1, 6, 6))
    out = layer.forward(x)
    assert out.shape == (1, 2, 3, 3)
    _check_layer(layer, x)


def test_batchnorm_gradients_dense(rng):
    layer = nn.BatchNorm(4)
    x = rng.normal(size=(6, 4))
    _check_layer(layer, x, atol=1e-5)


def test_batchnorm_gradients_conv(rng):
    layer = nn.BatchNorm(3)
    x = rng.normal(size=(4, 3, 5))
    _check_layer(layer, x, atol=1e-5)


def test_batchnorm_eval_uses_running_stats(rng):
    layer = nn.BatchNorm(3, momentum=0.5)
    x = rng.normal(size=(8, 3)) * 2.0 + 1.0
    layer.train()
    layer.forward(x)
    layer.eval()
    out = layer.forward(x)
    # In eval mode the output is an affine map of x with fixed statistics, so
    # feeding the same input twice gives the same output.
    np.testing.assert_allclose(out, layer.forward(x))


def test_relu_gradients(rng):
    layer = nn.ReLU()
    x = rng.normal(size=(4, 5)) + 0.05  # keep away from the kink
    _check_layer(layer, x)


def test_leaky_relu_gradients(rng):
    layer = nn.LeakyReLU(0.1)
    x = rng.normal(size=(4, 5)) + 0.05
    _check_layer(layer, x)


def test_tanh_and_sigmoid_gradients(rng):
    x = rng.normal(size=(3, 4))
    _check_layer(nn.Tanh(), x, atol=1e-5)
    _check_layer(nn.Sigmoid(), x, atol=1e-5)


def test_maxpool1d_gradients(rng):
    layer = nn.MaxPool1d(2)
    x = rng.normal(size=(2, 3, 8))
    _check_layer(layer, x)


def test_maxpool2d_gradients(rng):
    layer = nn.MaxPool2d(2)
    x = rng.normal(size=(2, 2, 4, 4))
    _check_layer(layer, x)


def test_global_avg_pool_1d_and_2d(rng):
    _check_layer(nn.GlobalAvgPool1d(), rng.normal(size=(2, 3, 6)))
    _check_layer(nn.GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))


def test_flatten_round_trip(rng):
    layer = nn.Flatten()
    x = rng.normal(size=(2, 3, 4))
    out = layer.forward(x)
    assert out.shape == (2, 12)
    back = layer.backward(out)
    np.testing.assert_allclose(back, x)


def test_sequential_gradients(rng):
    model = nn.Sequential(
        nn.Dense(4, 6, rng=rng),
        nn.ReLU(),
        nn.Dense(6, 3, rng=rng),
    )
    x = rng.normal(size=(5, 4))
    _check_layer(model, x)


def test_parallel_concat_gradients(rng):
    block = nn.ParallelConcat(
        nn.Conv1d(2, 2, kernel_size=1, rng=rng),
        nn.Conv1d(2, 3, kernel_size=3, rng=rng),
        axis=1,
    )
    x = rng.normal(size=(2, 2, 6))
    out = block.forward(x)
    assert out.shape == (2, 5, 6)
    _check_layer(block, x)


def test_residual_gradients(rng):
    body = nn.Sequential(nn.Conv1d(3, 3, kernel_size=3, rng=rng), nn.ReLU())
    block = nn.Residual(body)
    x = rng.normal(size=(2, 3, 6)) + 0.05
    _check_layer(block, x)


def test_residual_with_projection_shortcut(rng):
    body = nn.Conv1d(2, 4, kernel_size=3, rng=rng)
    shortcut = nn.Conv1d(2, 4, kernel_size=1, rng=rng)
    block = nn.Residual(body, shortcut=shortcut)
    x = rng.normal(size=(2, 2, 5))
    assert block.forward(x).shape == (2, 4, 5)
    _check_layer(block, x)


def test_residual_shape_mismatch_raises(rng):
    block = nn.Residual(nn.Conv1d(2, 4, kernel_size=3, rng=rng))
    with pytest.raises(ValueError):
        block.forward(rng.normal(size=(1, 2, 5)))


def test_dropout_train_vs_eval(rng):
    layer = nn.Dropout(0.5, rng=rng)
    x = np.ones((10, 20))
    layer.train()
    out_train = layer.forward(x)
    assert np.any(out_train == 0.0)
    layer.eval()
    np.testing.assert_allclose(layer.forward(x), x)
