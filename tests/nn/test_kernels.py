"""Tests for the pluggable conv-kernel backend layer (``repro.nn.kernels``).

Covers backend selection (env var, runtime knob, context managers), the
geometry-validation regression (stride <= 0 / padding < 0 used to produce
garbage shapes silently), edge-case geometries through both backends, the
strided path on non-contiguous inputs, and the float64 bit-identity property
between the strided backend and the naive reference across random shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn, runtime
from repro.nn import functional as F
from repro.nn import kernels
from repro.nn.kernels import (
    ConvKernel,
    KernelConfig,
    NaiveKernel,
    StridedKernel,
)

NAIVE = NaiveKernel()
STRIDED = StridedKernel()


def _random_cols_1d(rng, shape, kernel, stride, padding):
    n, c, length = shape
    out_len = (length + 2 * padding - kernel) // stride + 1
    return rng.normal(size=(n, out_len, c * kernel))


def _random_cols_2d(rng, shape, kernel, stride, padding):
    n, c, h, w = shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    return rng.normal(size=(n, out_h * out_w, c * kernel * kernel))


class TestBackendSelection:
    def test_default_backend_is_strided(self):
        assert kernels.DEFAULT_BACKEND == "strided"
        assert isinstance(KernelConfig().resolve(), StridedKernel)

    def test_available_backends(self):
        names = kernels.available_backends()
        assert "naive" in names and "strided" in names

    def test_set_backend_returns_previous(self):
        previous = kernels.set_backend("naive")
        try:
            assert kernels.get_backend_name() == "naive"
            assert isinstance(kernels.get_backend(), NaiveKernel)
        finally:
            kernels.set_backend(previous)

    def test_use_backend_restores_on_exit(self):
        before = kernels.get_backend_name()
        with kernels.use_backend("naive") as backend:
            assert backend.name == "naive"
            assert kernels.get_backend_name() == "naive"
        assert kernels.get_backend_name() == before

    def test_use_backend_restores_on_error(self):
        before = kernels.get_backend_name()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("naive"):
                raise RuntimeError("boom")
        assert kernels.get_backend_name() == before

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown conv-kernel backend"):
            kernels.set_backend("does-not-exist")
        with pytest.raises(ValueError, match="available backends"):
            KernelConfig(backend="nope").resolve()

    def test_runtime_knob_switches_dispatch(self):
        before = runtime.get_conv_kernel()
        assert before == kernels.get_backend_name()
        with runtime.use_conv_kernel("naive") as name:
            assert name == "naive"
            assert runtime.get_conv_kernel() == "naive"
            assert isinstance(kernels.get_backend(), NaiveKernel)
        assert runtime.get_conv_kernel() == before

    def test_kernel_config_from_environment(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "naive")
        assert KernelConfig.from_environment().backend == "naive"
        monkeypatch.setenv(kernels.ENV_VAR, "")
        assert KernelConfig.from_environment().backend == kernels.DEFAULT_BACKEND
        monkeypatch.delenv(kernels.ENV_VAR)
        assert KernelConfig.from_environment().backend == kernels.DEFAULT_BACKEND

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            kernels.register_backend("strided", StridedKernel)

    def test_register_custom_backend(self):
        class EchoKernel(NaiveKernel):
            name = "echo-test"

        kernels.register_backend("echo-test", EchoKernel, overwrite=True)
        try:
            with kernels.use_backend("echo-test") as backend:
                assert isinstance(backend, EchoKernel)
        finally:
            # drop the test-only backend from the registry
            kernels.config._FACTORIES.pop("echo-test", None)
            kernels.config._INSTANCES.pop("echo-test", None)


class TestGeometryValidation:
    """Regression: im2col_1d/2d used to silently accept stride <= 0 and
    padding < 0 and produce garbage shapes."""

    @pytest.mark.parametrize("bad_stride", [0, -1, -3])
    def test_im2col_1d_rejects_nonpositive_stride(self, rng, bad_stride):
        x = rng.normal(size=(1, 2, 8))
        with pytest.raises(ValueError, match=f"stride must be positive, got {bad_stride}"):
            F.im2col_1d(x, 3, bad_stride, 1)

    @pytest.mark.parametrize("bad_padding", [-1, -2])
    def test_im2col_1d_rejects_negative_padding(self, rng, bad_padding):
        x = rng.normal(size=(1, 2, 8))
        with pytest.raises(ValueError, match=f"padding must be non-negative, got {bad_padding}"):
            F.im2col_1d(x, 3, 1, bad_padding)

    @pytest.mark.parametrize("bad_stride", [0, -2])
    def test_im2col_2d_rejects_nonpositive_stride(self, rng, bad_stride):
        x = rng.normal(size=(1, 2, 6, 6))
        with pytest.raises(ValueError, match="stride must be positive"):
            F.im2col_2d(x, 3, bad_stride, 1)

    def test_im2col_2d_rejects_negative_padding(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        with pytest.raises(ValueError, match="padding must be non-negative, got -1"):
            F.im2col_2d(x, 3, 1, -1)

    def test_im2col_rejects_nonpositive_kernel(self, rng):
        with pytest.raises(ValueError, match="kernel_size must be positive"):
            F.im2col_1d(rng.normal(size=(1, 2, 8)), 0, 1, 0)

    @pytest.mark.parametrize("backend", [NAIVE, STRIDED])
    def test_col2im_validates_too(self, rng, backend):
        cols = rng.normal(size=(1, 6, 6))
        with pytest.raises(ValueError, match="stride must be positive"):
            backend.col2im_1d(cols, (1, 2, 8), 3, 0, 1)
        with pytest.raises(ValueError, match="padding must be non-negative"):
            backend.col2im_2d(cols, (1, 2, 6, 6), 3, 1, -1)

    @pytest.mark.parametrize("backend", [NAIVE, STRIDED])
    def test_kernel_larger_than_padded_input_raises(self, rng, backend):
        x = rng.normal(size=(1, 2, 4))
        with pytest.raises(ValueError, match="output is non-positive"):
            backend.im2col_1d(x, 7, 1, 1)

    def test_conv_layers_reject_negative_padding(self):
        with pytest.raises(ValueError, match="padding must be non-negative"):
            nn.Conv1d(2, 3, kernel_size=3, padding=-1)
        with pytest.raises(ValueError, match="padding must be non-negative"):
            nn.Conv2d(2, 3, kernel_size=3, padding=-2)


class TestEdgeCaseGeometries:
    """Edge geometries through both backends, checked against each other and
    for the analytically known shapes."""

    @pytest.mark.parametrize("backend", [NAIVE, STRIDED])
    def test_kernel_equals_input_size_1d(self, rng, backend):
        x = rng.normal(size=(2, 3, 5))
        cols = backend.im2col_1d(x, kernel_size=5, stride=1, padding=0)
        assert cols.shape == (2, 1, 15)  # single window covering everything
        np.testing.assert_array_equal(
            cols.reshape(2, 3, 5), x
        )

    @pytest.mark.parametrize("backend", [NAIVE, STRIDED])
    def test_kernel_equals_input_size_2d(self, rng, backend):
        x = rng.normal(size=(2, 2, 4, 4))
        cols = backend.im2col_2d(x, kernel_size=4, stride=1, padding=0)
        assert cols.shape == (2, 1, 32)
        np.testing.assert_array_equal(cols.reshape(2, 2, 4, 4), x)

    @pytest.mark.parametrize("backend", [NAIVE, STRIDED])
    def test_stride_larger_than_kernel_skips_positions(self, rng, backend):
        # stride 3 > kernel 2: windows at offsets 0, 3, 6 — gaps are never read
        x = rng.normal(size=(1, 1, 8))
        cols = backend.im2col_1d(x, kernel_size=2, stride=3, padding=0)
        assert cols.shape == (1, 3, 2)
        np.testing.assert_array_equal(cols[0, :, 0], x[0, 0, [0, 3, 6]])
        # ...and the adjoint scatters back only to the read positions
        grad = backend.col2im_1d(np.ones_like(cols), (1, 1, 8), 2, 3, 0)
        np.testing.assert_array_equal(grad[0, 0], [1, 1, 0, 1, 1, 0, 1, 1])

    @pytest.mark.parametrize("backend", [NAIVE, STRIDED])
    def test_zero_padding_vs_same_padding(self, rng, backend):
        x = rng.normal(size=(2, 2, 9))
        valid = backend.im2col_1d(x, 3, 1, 0)   # "valid": shrinks
        same = backend.im2col_1d(x, 3, 1, 1)    # "same" for k=3, s=1
        assert valid.shape == (2, 7, 6)
        assert same.shape == (2, 9, 6)
        # interior windows agree; border windows of the padded call see zeros
        np.testing.assert_array_equal(same[:, 1:-1], valid)
        assert np.all(same[:, 0, 0::3] == 0.0)  # first tap of first window is pad

    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [((2, 3, 5), 5, 1, 0), ((1, 2, 8), 2, 3, 0), ((2, 2, 7), 3, 5, 1)],
    )
    def test_strided_matches_naive_on_edge_geometries(self, rng, shape, kernel, stride, padding):
        x = rng.normal(size=shape)
        np.testing.assert_array_equal(
            STRIDED.im2col_1d(x, kernel, stride, padding),
            NAIVE.im2col_1d(x, kernel, stride, padding),
        )
        cols = _random_cols_1d(rng, shape, kernel, stride, padding)
        np.testing.assert_array_equal(
            STRIDED.col2im_1d(cols, shape, kernel, stride, padding),
            NAIVE.col2im_1d(cols, shape, kernel, stride, padding),
        )


class TestNonContiguousInputs:
    """The strided path must read non-contiguous (transposed/sliced) inputs
    correctly — ``as_strided`` derives the window view from whatever strides
    the input has, so no copy is needed and no garbage may appear."""

    def test_transposed_input_1d(self, rng):
        base = rng.normal(size=(3, 9, 2))          # (C, L, N) storage
        x = base.transpose(2, 0, 1)                # (N, C, L) non-contiguous view
        assert not x.flags.c_contiguous
        np.testing.assert_array_equal(
            STRIDED.im2col_1d(x, 3, 1, 0),
            NAIVE.im2col_1d(np.ascontiguousarray(x), 3, 1, 0),
        )

    def test_sliced_input_1d(self, rng):
        base = rng.normal(size=(4, 3, 20))
        x = base[::2, :, ::2]                      # strided slice view
        assert not x.flags.c_contiguous
        np.testing.assert_array_equal(
            STRIDED.im2col_1d(x, 3, 2, 1),
            NAIVE.im2col_1d(np.ascontiguousarray(x), 3, 2, 1),
        )

    def test_transposed_input_2d(self, rng):
        base = rng.normal(size=(6, 6, 2, 2))       # (H, W, N, C) storage
        x = base.transpose(2, 3, 0, 1)             # (N, C, H, W) non-contiguous
        assert not x.flags.c_contiguous
        np.testing.assert_array_equal(
            STRIDED.im2col_2d(x, 3, 1, 1),
            NAIVE.im2col_2d(np.ascontiguousarray(x), 3, 1, 1),
        )

    def test_conv1d_layer_on_non_contiguous_input(self, rng):
        layer = nn.Conv1d(3, 4, kernel_size=3, rng=rng)
        base = rng.normal(size=(3, 10, 2))
        x = base.transpose(2, 0, 1)
        out_view = layer.forward(x)
        out_contig = layer.forward(np.ascontiguousarray(x))
        np.testing.assert_array_equal(out_view, out_contig)


class TestStridedNaiveBitIdentity:
    """Property test: at float64 the strided backend is bit-identical to the
    naive reference — forward windows, backward scatter, 1-D and 2-D —
    across randomly drawn geometries."""

    def test_random_geometries_1d(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 5))
            c = int(rng.integers(1, 6))
            kernel = int(rng.integers(1, 8))
            stride = int(rng.integers(1, 5))
            padding = int(rng.integers(0, 4))
            min_len = max(1, kernel - 2 * padding)
            length = int(rng.integers(min_len, min_len + 14))
            shape = (n, c, length)
            x = rng.normal(size=shape)
            fwd_naive = NAIVE.im2col_1d(x, kernel, stride, padding)
            fwd_strided = STRIDED.im2col_1d(x, kernel, stride, padding)
            np.testing.assert_array_equal(fwd_strided, fwd_naive)
            cols = _random_cols_1d(rng, shape, kernel, stride, padding)
            bwd_naive = NAIVE.col2im_1d(cols, shape, kernel, stride, padding)
            bwd_strided = STRIDED.col2im_1d(cols, shape, kernel, stride, padding)
            np.testing.assert_array_equal(bwd_strided, bwd_naive)

    def test_random_geometries_2d(self, rng):
        for _ in range(15):
            n = int(rng.integers(1, 4))
            c = int(rng.integers(1, 4))
            kernel = int(rng.integers(1, 5))
            stride = int(rng.integers(1, 4))
            padding = int(rng.integers(0, 3))
            min_hw = max(1, kernel - 2 * padding)
            h = int(rng.integers(min_hw, min_hw + 7))
            w = int(rng.integers(min_hw, min_hw + 7))
            shape = (n, c, h, w)
            x = rng.normal(size=shape)
            np.testing.assert_array_equal(
                STRIDED.im2col_2d(x, kernel, stride, padding),
                NAIVE.im2col_2d(x, kernel, stride, padding),
            )
            cols = _random_cols_2d(rng, shape, kernel, stride, padding)
            np.testing.assert_array_equal(
                STRIDED.col2im_2d(cols, shape, kernel, stride, padding),
                NAIVE.col2im_2d(cols, shape, kernel, stride, padding),
            )

    def test_adjoint_identity_strided(self, rng):
        """<im2col(x), cols> == <x, col2im(cols)> through the strided backend."""
        x = rng.normal(size=(2, 3, 10))
        cols = rng.normal(size=(2, 10, 9))  # kernel 3, stride 1, padding 1
        lhs = float(np.sum(STRIDED.im2col_1d(x, 3, 1, 1) * cols))
        rhs = float(np.sum(x * STRIDED.col2im_1d(cols, x.shape, 3, 1, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_output_follows_runtime_dtype(self, rng):
        cols64 = rng.normal(size=(1, 5, 4))  # kernel 2, stride 1 over length 6
        with runtime.use_dtype(np.float32):
            out = STRIDED.col2im_1d(cols64.astype(np.float32), (1, 2, 6), 2, 1, 0)
            assert out.dtype == np.float32
        out64 = STRIDED.col2im_1d(cols64, (1, 2, 6), 2, 1, 0)
        assert out64.dtype == np.float64


class TestConvLayerIntegration:
    """Conv1d/Conv2d thread the active backend through forward AND backward."""

    def _run_conv1d(self, rng_seed, backend_name):
        rng = np.random.default_rng(rng_seed)
        layer = nn.Conv1d(3, 4, kernel_size=3, stride=2, rng=rng)
        x = rng.normal(size=(2, 3, 11))
        with kernels.use_backend(backend_name):
            out = layer.forward(x)
            grad_in = layer.backward(np.ones_like(out))
        return out, grad_in, layer.weight.grad.copy()

    def test_conv1d_identical_across_backends(self):
        out_s, gin_s, gw_s = self._run_conv1d(7, "strided")
        out_n, gin_n, gw_n = self._run_conv1d(7, "naive")
        np.testing.assert_array_equal(out_s, out_n)
        np.testing.assert_array_equal(gin_s, gin_n)
        np.testing.assert_array_equal(gw_s, gw_n)

    def test_conv2d_identical_across_backends(self):
        results = {}
        for name in ("strided", "naive"):
            rng = np.random.default_rng(3)
            layer = nn.Conv2d(2, 3, kernel_size=3, rng=rng)
            x = rng.normal(size=(2, 2, 7, 7))
            with kernels.use_backend(name):
                out = layer.forward(x)
                grad_in = layer.backward(np.ones_like(out))
            results[name] = (out, grad_in, layer.weight.grad.copy())
        for a, b in zip(results["strided"], results["naive"]):
            np.testing.assert_array_equal(a, b)

    def test_backward_reuses_forward_backend(self, rng):
        """Switching backends between forward and backward must not mix
        implementations within one step."""
        layer = nn.Conv1d(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 2, 8))
        with kernels.use_backend("naive"):
            out = layer.forward(x)
        assert isinstance(layer._kernel, NaiveKernel)
        layer.backward(np.ones_like(out))  # outside the context: still naive
        assert isinstance(layer._kernel, NaiveKernel)

    def test_calibrate_with_backprop_conv_kernel_knob(self, rng):
        """The QAT path accepts a conv_kernel override and restores the
        previous backend afterwards."""
        from repro.quantization import calibrate_with_backprop, quantize_model

        before = kernels.get_backend_name()
        model = nn.Sequential(
            nn.Conv1d(2, 3, kernel_size=3, rng=rng, name="c1"),
            nn.ReLU(),
            nn.GlobalAvgPool1d(),
            nn.Dense(3, 2, rng=rng, name="head"),
        )
        x = rng.normal(size=(12, 2, 9))
        y = rng.integers(0, 2, size=12)
        results = {}
        for name in ("naive", "strided"):
            qmodel = quantize_model(__import__("copy").deepcopy(model), bits=4)
            results[name] = calibrate_with_backprop(
                qmodel, x, y, epochs=2, lr=0.01, batch_size=4,
                rng=np.random.default_rng(0), conv_kernel=name,
            )
            assert kernels.get_backend_name() == before
        np.testing.assert_array_equal(results["naive"].losses, results["strided"].losses)


class TestKernelContract(object):
    """The abstract base refuses to compute and reports its hooks clearly."""

    def test_abstract_kernel_raises_not_implemented(self, rng):
        kernel = ConvKernel()
        with pytest.raises(NotImplementedError):
            kernel.im2col_1d(rng.normal(size=(1, 1, 5)), 3, 1, 1)

    def test_repr_names_backend(self):
        assert "strided" in repr(STRIDED)
        assert "naive" in repr(NAIVE)
