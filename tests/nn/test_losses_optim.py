"""Tests for losses, optimisers, module utilities and training loops."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.training import (
    TrainingHistory,
    evaluate,
    iterate_minibatches,
    predict_labels,
    predict_proba,
    train_classifier,
)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 2])
        loss_fn = nn.CrossEntropyLoss()
        loss = loss_fn.forward(logits, labels)
        probs = F.softmax(logits, axis=1)
        expected = -np.mean(np.log(probs[np.arange(4), labels]))
        assert loss == pytest.approx(expected)

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        loss_fn = nn.CrossEntropyLoss()
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += eps
                plus = loss_fn.forward(logits, labels)
                logits[i, j] -= 2 * eps
                minus = loss_fn.forward(logits, labels)
                logits[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_weighted_loss_prefers_weighted_examples(self, rng):
        logits = np.array([[5.0, 0.0], [0.0, 5.0]])
        labels = np.array([1, 1])  # first example is wrong, second is right
        loss_fn = nn.CrossEntropyLoss()
        heavy_on_wrong = loss_fn.forward(logits, labels, sample_weights=np.array([10.0, 1.0]))
        heavy_on_right = loss_fn.forward(logits, labels, sample_weights=np.array([1.0, 10.0]))
        assert heavy_on_wrong > heavy_on_right

    def test_rejects_mismatched_shapes(self, rng):
        loss_fn = nn.CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn.forward(rng.normal(size=(3, 2)), np.array([0, 1]))


class TestMSE:
    def test_value_and_gradient(self):
        loss_fn = nn.MSELoss()
        pred = np.array([[1.0, 2.0], [3.0, 4.0]])
        target = np.array([[0.0, 2.0], [3.0, 2.0]])
        loss = loss_fn.forward(pred, target)
        assert loss == pytest.approx((1.0 + 0.0 + 0.0 + 4.0) / 4)
        grad = loss_fn.backward()
        np.testing.assert_allclose(grad, 2 * (pred - target) / 4)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            nn.MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        param = nn.Parameter(np.array([1.0, -1.0]))
        param.accumulate_grad(np.array([0.5, -0.5]))
        opt = nn.SGD([param], lr=0.1)
        opt.step()
        np.testing.assert_allclose(param.data, [0.95, -0.95])

    def test_sgd_momentum_accumulates(self):
        param = nn.Parameter(np.array([0.0]))
        opt = nn.SGD([param], lr=1.0, momentum=0.9)
        param.accumulate_grad(np.array([1.0]))
        opt.step()
        first = param.data.copy()
        param.zero_grad()
        param.accumulate_grad(np.array([1.0]))
        opt.step()
        # With momentum the second step is larger than the first.
        assert abs(param.data[0] - first[0]) > abs(first[0])

    def test_weight_decay_shrinks_parameters(self):
        param = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=0.5)
        opt.step()  # gradient is zero; only decay acts
        assert param.data[0] < 10.0

    def test_adam_reduces_quadratic_loss(self):
        param = nn.Parameter(np.array([5.0]))
        opt = nn.Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            param.accumulate_grad(2 * param.data)  # d/dx x^2
            opt.step()
        assert abs(param.data[0]) < 0.5

    def test_requires_grad_false_is_skipped(self):
        param = nn.Parameter(np.array([1.0]), requires_grad=False)
        param.accumulate_grad(np.array([1.0]))
        nn.SGD([param], lr=0.5).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestModuleUtilities:
    def test_state_dict_round_trip(self, rng):
        model = nn.Sequential(nn.Dense(3, 4, rng=rng), nn.ReLU(), nn.Dense(4, 2, rng=rng))
        state = model.state_dict()
        clone = nn.Sequential(nn.Dense(3, 4, rng=rng), nn.ReLU(), nn.Dense(4, 2, rng=rng))
        clone.load_state_dict(state)
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(model.forward(x), clone.forward(x))

    def test_load_state_dict_rejects_unknown_keys(self, rng):
        model = nn.Sequential(nn.Dense(3, 2, rng=rng))
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_weighted_layers_finds_conv_and_dense(self, rng):
        model = nn.Sequential(
            nn.Conv1d(2, 3, 3, rng=rng), nn.ReLU(), nn.Flatten(), nn.Dense(9, 2, rng=rng)
        )
        names = [type(m).__name__ for m in model.weighted_layers()]
        assert "Conv1d" in names and "Dense" in names

    def test_num_parameters_counts_everything(self, rng):
        model = nn.Dense(3, 4, rng=rng)
        assert model.num_parameters() == 3 * 4 + 4

    def test_parameter_shape_mismatch_on_load(self, rng):
        model = nn.Sequential(nn.Dense(3, 2, rng=rng))
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestTrainingLoop:
    def test_minibatches_cover_all_examples(self, rng):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, batch_size=3, rng=rng):
            assert bx.shape[0] == by.shape[0]
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffle_fallback_is_deterministic_and_documented(self):
        """Without a generator, every call replays the same pinned order."""
        from repro.nn.training import DEFAULT_SHUFFLE_SEED

        x = np.arange(12)[:, None].astype(float)
        y = np.arange(12)

        def order(rng=None):
            return [
                int(label)
                for _, by in iterate_minibatches(x, y, batch_size=4, rng=rng)
                for label in by
            ]

        assert order() == order()  # the fallback repeats, never drifts
        pinned = np.random.default_rng(DEFAULT_SHUFFLE_SEED)
        assert order() == order(rng=pinned)  # and equals the documented seed
        # An explicit generator advances, so consecutive calls differ.
        generator = np.random.default_rng(DEFAULT_SHUFFLE_SEED)
        first, second = order(rng=generator), order(rng=generator)
        assert first != second

    def test_no_shuffle_preserves_order(self):
        x = np.arange(9)[:, None].astype(float)
        y = np.arange(9)
        seen = [
            int(label)
            for _, by in iterate_minibatches(x, y, batch_size=4, shuffle=False)
            for label in by
        ]
        assert seen == list(range(9))

    def test_training_improves_accuracy(self, small_classification_data, rng):
        x, y = small_classification_data
        model = nn.Sequential(nn.Dense(3, 16, rng=rng), nn.ReLU(), nn.Dense(16, 3, rng=rng))
        before = evaluate(model, x, y)
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        history = train_classifier(model, optimizer, x, y, epochs=30, batch_size=16, rng=rng)
        after = evaluate(model, x, y)
        assert isinstance(history, TrainingHistory)
        assert after > before
        assert after > 0.9

    def test_epoch_callback_invoked(self, small_classification_data, rng):
        x, y = small_classification_data
        model = nn.Sequential(nn.Dense(3, 8, rng=rng), nn.ReLU(), nn.Dense(8, 3, rng=rng))
        calls = []
        train_classifier(
            model,
            nn.SGD(model.parameters(), lr=0.05),
            x,
            y,
            epochs=3,
            rng=rng,
            epoch_callback=lambda epoch, m: calls.append(epoch),
        )
        assert calls == [0, 1, 2]

    def test_predict_proba_rows_sum_to_one(self, small_classification_data, rng):
        x, y = small_classification_data
        model = nn.Sequential(nn.Dense(3, 8, rng=rng), nn.ReLU(), nn.Dense(8, 3, rng=rng))
        probs = predict_proba(model, x)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(x.shape[0]))
        labels = predict_labels(model, x)
        np.testing.assert_array_equal(labels, probs.argmax(axis=1))


class TestFunctional:
    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, np.eye(3)[[0, 2, 1]])

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)

    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(rng.normal(size=(5, 4)) * 50)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
        assert np.all(np.isfinite(probs))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_clip_gradients_limits_norm(self, rng):
        grads = [rng.normal(size=(4, 4)) * 100 for _ in range(3)]
        F.clip_gradients(grads, max_norm=1.0)
        total = np.sqrt(sum(np.sum(g ** 2) for g in grads))
        assert total <= 1.0 + 1e-9
