"""Tests for the flat parameter arena and segmented quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn, runtime
from repro.quantization import (
    QuantizationConfig,
    QuantizedModel,
    SegmentLayout,
    UniformQuantizer,
    quantize_model,
)


def _make_model(rng, in_features=5, classes=3):
    return nn.Sequential(
        nn.Dense(in_features, 12, rng=rng), nn.ReLU(), nn.Dense(12, classes, rng=rng)
    )


class TestSegmentLayout:
    def test_views_are_zero_copy(self):
        layout = SegmentLayout(["a", "b"], [(2, 3), (4,)])
        buffer = np.arange(10, dtype=np.float64)
        view = layout.view(buffer, "a")
        assert view.shape == (2, 3)
        view[0, 0] = 99.0
        assert buffer[0] == 99.0
        assert layout.view(buffer, "b").base is buffer

    def test_offsets_and_size(self):
        layout = SegmentLayout(["a", "b", "c"], [(2, 2), (3,), ()])
        np.testing.assert_array_equal(layout.offsets, [0, 4, 7, 8])
        assert layout.size == 8
        assert layout.num_segments == 3

    def test_flatten_round_trip(self):
        rng = np.random.default_rng(0)
        arrays = {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=(4,))}
        layout = SegmentLayout.from_arrays(arrays)
        flat = layout.flatten(arrays)
        for name, value in arrays.items():
            np.testing.assert_array_equal(
                layout.view(flat, name), value.astype(flat.dtype)
            )

    def test_flatten_rejects_missing_and_mismatched(self):
        layout = SegmentLayout(["a"], [(2,)])
        with pytest.raises(KeyError):
            layout.flatten({})
        with pytest.raises(ValueError):
            layout.flatten({"a": np.zeros((3,))})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SegmentLayout(["a", "a"], [(1,), (2,)])


class TestQuantizeSegments:
    @pytest.mark.parametrize("symmetric", [True, False])
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_matches_scalar_path(self, rng, symmetric, bits):
        """Segmented scales/zero-points equal the per-tensor scalar path."""
        quantizer = UniformQuantizer(QuantizationConfig(bits=bits, symmetric=symmetric))
        tensors = [
            rng.normal(size=(7, 3)),
            rng.uniform(2.0, 9.0, size=(11,)),  # skewed all-positive band
            np.zeros(5),
            rng.normal(size=(1,)),
        ]
        flat = np.concatenate([t.reshape(-1) for t in tensors])
        offsets = np.concatenate([[0], np.cumsum([t.size for t in tensors])])
        scales, zero_points = quantizer.quantize_segments(flat, offsets)
        for index, tensor in enumerate(tensors):
            qt = quantizer.quantize(tensor)
            assert scales[index] == qt.scale, index
            assert zero_points[index] == qt.zero_point, index

    def test_empty_segments_get_unit_scale(self):
        quantizer = UniformQuantizer(QuantizationConfig(bits=4))
        flat = np.array([1.0, -2.0])
        offsets = np.array([0, 0, 2, 2])
        scales, zero_points = quantizer.quantize_segments(flat, offsets)
        assert scales[0] == 1.0 and scales[2] == 1.0
        assert scales[1] == quantizer.quantize(flat).scale
        np.testing.assert_array_equal(zero_points, 0)

    def test_empty_buffer(self):
        quantizer = UniformQuantizer(QuantizationConfig(bits=4))
        scales, zero_points = quantizer.quantize_segments(np.zeros(0), np.array([0, 0]))
        np.testing.assert_array_equal(scales, 1.0)
        np.testing.assert_array_equal(zero_points, 0)

    @pytest.mark.parametrize("symmetric", [True, False])
    def test_fake_quantize_flat_matches_per_tensor(self, rng, symmetric):
        quantizer = UniformQuantizer(QuantizationConfig(bits=4, symmetric=symmetric))
        tensors = [rng.normal(size=(6, 2)), rng.normal(size=(9,)) + 3.0]
        flat = np.concatenate([t.reshape(-1) for t in tensors])
        offsets = np.concatenate([[0], np.cumsum([t.size for t in tensors])])
        values, _, _ = quantizer.fake_quantize_flat(flat, offsets)
        expected = np.concatenate(
            [quantizer.fake_quantize(t).reshape(-1) for t in tensors]
        )
        np.testing.assert_array_equal(values, expected)

    def test_quantize_flat_matches_per_tensor_codes(self, rng):
        quantizer = UniformQuantizer(QuantizationConfig(bits=4))
        tensors = [rng.normal(size=(5, 4)), rng.normal(size=(3,))]
        flat = np.concatenate([t.reshape(-1) for t in tensors])
        offsets = np.concatenate([[0], np.cumsum([t.size for t in tensors])])
        scales, zero_points = quantizer.quantize_segments(flat, offsets)
        codes = quantizer.quantize_flat(flat, offsets, scales, zero_points)
        expected = np.concatenate(
            [quantizer.quantize(t).codes.reshape(-1) for t in tensors]
        )
        np.testing.assert_array_equal(codes, expected)


class TestArenaMode:
    def test_views_share_storage(self, rng):
        qmodel = quantize_model(_make_model(rng), bits=4, arena=True)
        arena = qmodel.arena
        for name, param in qmodel.model.named_parameters():
            assert param.is_shared
            assert param.data.base is arena.weights
            assert qmodel.latent[name].base is arena.latent
            assert qmodel.qtensors[name].codes.base is arena.codes

    def test_enable_disable_round_trip(self, rng, small_classification_data):
        x, _ = small_classification_data
        qmodel = quantize_model(_make_model(rng, in_features=3), bits=4)
        digest = qmodel.codes_digest()
        reference = qmodel.forward(x)
        qmodel.enable_arena()
        assert qmodel.codes_digest() == digest
        np.testing.assert_array_equal(qmodel.forward(x), reference)
        qmodel.disable_arena()
        assert qmodel.codes_digest() == digest
        np.testing.assert_array_equal(qmodel.forward(x), reference)
        for param in qmodel.model.parameters():
            assert not param.is_shared

    def test_enable_is_idempotent(self, rng):
        qmodel = quantize_model(_make_model(rng), bits=4, arena=True)
        assert qmodel.enable_arena() is qmodel.arena

    def test_edge_ops_match_per_tensor_path(self, rng, small_classification_data):
        """Flips and rollbacks through arena views equal the owned-storage path."""
        x, _ = small_classification_data
        model = _make_model(np.random.default_rng(5), in_features=3)
        import copy

        pristine = copy.deepcopy(model)
        arena_q = QuantizedModel(model, QuantizationConfig(bits=4), arena=True)
        plain_q = QuantizedModel(pristine, QuantizationConfig(bits=4))
        flips = {
            name: rng.integers(-1, 2, size=qt.codes.shape)
            for name, qt in plain_q.qtensors.items()
        }
        snap_a, snap_p = arena_q.snapshot_codes(), plain_q.snapshot_codes()
        arena_q.apply_flips({k: v.copy() for k, v in flips.items()})
        plain_q.apply_flips({k: v.copy() for k, v in flips.items()})
        assert arena_q.codes_digest() == plain_q.codes_digest()
        np.testing.assert_array_equal(arena_q.forward(x), plain_q.forward(x))
        arena_q.restore_codes(snap_a)
        plain_q.restore_codes(snap_p)
        assert arena_q.codes_digest() == plain_q.codes_digest()
        for name in plain_q.latent:
            np.testing.assert_array_equal(
                np.asarray(arena_q.latent[name]), plain_q.latent[name]
            )

    def test_update_latent_matches_per_tensor_path(self, rng):
        model = _make_model(np.random.default_rng(6))
        import copy

        pristine = copy.deepcopy(model)
        arena_q = QuantizedModel(model, QuantizationConfig(bits=4), arena=True)
        plain_q = QuantizedModel(pristine, QuantizationConfig(bits=4))
        updates = {
            name: 0.01 * rng.normal(size=values.shape)
            for name, values in plain_q.latent.items()
        }
        arena_q.update_latent({k: v.copy() for k, v in updates.items()})
        plain_q.update_latent({k: v.copy() for k, v in updates.items()})
        assert arena_q.codes_digest() == plain_q.codes_digest()
        for name in plain_q.latent:
            np.testing.assert_array_equal(
                np.asarray(arena_q.latent[name]), plain_q.latent[name]
            )
            assert arena_q.qtensors[name].scale == plain_q.qtensors[name].scale

    def test_partial_update_latent_keeps_other_tensors(self, rng):
        model = _make_model(np.random.default_rng(7))
        import copy

        pristine = copy.deepcopy(model)
        arena_q = QuantizedModel(model, QuantizationConfig(bits=4), arena=True)
        plain_q = QuantizedModel(pristine, QuantizationConfig(bits=4))
        name = next(iter(plain_q.latent))
        delta = {name: 0.05 * rng.normal(size=plain_q.latent[name].shape)}
        arena_q.update_latent({name: delta[name].copy()})
        plain_q.update_latent({name: delta[name].copy()})
        assert arena_q.codes_digest() == plain_q.codes_digest()
        for key in plain_q.qtensors:
            assert arena_q.qtensors[key].scale == plain_q.qtensors[key].scale, key

    def test_update_latent_flat_matches_dict_update(self, rng):
        model = _make_model(np.random.default_rng(8))
        import copy

        pristine = copy.deepcopy(model)
        flat_q = QuantizedModel(model, QuantizationConfig(bits=4), arena=True)
        dict_q = QuantizedModel(pristine, QuantizationConfig(bits=4), arena=True)
        updates = {
            name: 0.01 * rng.normal(size=values.shape)
            for name, values in dict_q.latent.items()
        }
        flat_delta = flat_q.arena.layout.flatten(updates)
        flat_q.update_latent_flat(flat_delta)
        dict_q.update_latent(updates)
        assert flat_q.codes_digest() == dict_q.codes_digest()
        np.testing.assert_array_equal(flat_q.arena.latent, dict_q.arena.latent)

    def test_update_latent_flat_requires_arena_and_size(self, rng):
        plain = quantize_model(_make_model(rng), bits=4)
        with pytest.raises(RuntimeError):
            plain.update_latent_flat(np.zeros(plain.num_parameters()))
        arena_q = quantize_model(_make_model(rng), bits=4, arena=True)
        with pytest.raises(ValueError):
            arena_q.update_latent_flat(np.zeros(3))

    def test_deepcopy_keeps_arena_wired(self, rng):
        """copy.deepcopy of an arena-backed wrapper must not detach views."""
        import copy

        qmodel = quantize_model(_make_model(rng), bits=4, arena=True)
        dup = copy.deepcopy(qmodel)
        assert dup.arena is not None and dup.arena is not qmodel.arena
        assert dup.codes_digest() == qmodel.codes_digest()
        for name, param in dup.model.named_parameters():
            assert param.data.base is dup.arena.weights, name
            assert dup.latent[name].base is dup.arena.latent, name
        # Updates through the copy reach its model weights, not the original.
        before = {n: p.data.copy() for n, p in dup.model.named_parameters()}
        dup.update_latent(
            {name: 0.5 * np.ones_like(v) for name, v in dup.latent.items()}
        )
        assert any(
            not np.array_equal(p.data, before[n])
            for n, p in dup.model.named_parameters()
        )
        assert dup.codes_digest() != qmodel.codes_digest()

    def test_clone_preserves_arena_and_independence(self, rng):
        qmodel = quantize_model(_make_model(rng), bits=4, arena=True)
        clone = qmodel.clone()
        assert clone.arena is not None
        assert clone.arena is not qmodel.arena
        assert clone.codes_digest() == qmodel.codes_digest()
        clone.apply_flips(
            {name: np.ones_like(qt.codes) for name, qt in clone.qtensors.items()}
        )
        # The original must be untouched by the clone's mutation.
        assert clone.codes_digest() != qmodel.codes_digest()

    def test_load_state_dict_writes_through_views(self, rng):
        qmodel = quantize_model(_make_model(rng), bits=4, arena=True)
        state = {
            name: np.zeros_like(param.data)
            for name, param in qmodel.model.named_parameters()
        }
        qmodel.model.load_state_dict(state)
        np.testing.assert_array_equal(qmodel.arena.weights, 0.0)
        for param in qmodel.model.parameters():
            assert param.is_shared  # views survived the load

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_arena_buffers_use_compute_dtype(self, dtype):
        with runtime.use_dtype(dtype):
            qmodel = quantize_model(
                _make_model(np.random.default_rng(0)), bits=4, arena=True
            )
            assert qmodel.arena.latent.dtype == np.dtype(dtype)
            assert qmodel.arena.weights.dtype == np.dtype(dtype)
            assert qmodel.arena.codes.dtype == np.int64


class TestParameterViewSafety:
    def test_optimizer_step_writes_through_shared_storage(self, rng):
        qmodel = quantize_model(_make_model(rng), bits=4, arena=True)
        params = list(qmodel.model.parameters())
        optimizer = nn.SGD(params, lr=0.1)
        for param in params:
            param.grad[...] = 1.0
        buffers = [param.data for param in params]
        optimizer.step()
        for param, buffer in zip(params, buffers):
            assert param.data is buffer  # still the arena view
        assert qmodel.arena is not None

    def test_adopt_and_release_view(self):
        param = nn.Parameter(np.arange(4.0))
        buffer = np.zeros(4, dtype=param.data.dtype)
        param.adopt_view(buffer)
        assert param.is_shared
        np.testing.assert_array_equal(buffer, np.arange(4.0))
        param.release_view()
        assert not param.is_shared
        buffer[...] = 7.0
        np.testing.assert_array_equal(param.data, np.arange(4.0))

    def test_adopt_view_rejects_shape_mismatch(self):
        param = nn.Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            param.adopt_view(np.zeros(5, dtype=param.data.dtype))
