"""Fused-arena STE must be bit-identical to the per-tensor STE loop at float64.

The property is asserted across every registered backbone and every paper
bit-width: identical losses/accuracies, identical epoch-hook code snapshots
(``codes_before`` / ``codes_after``), identical final integer codes, latent
weights and synchronized model weights.  The suite-wide fixture pins float64,
the precision the guarantee is made at.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, build_model
from repro.quantization import calibrate_with_backprop, quantize_model

#: Small input shapes per registry kind so every backbone stays test-sized.
MODEL_SHAPES = {
    "time-series": (2, 12),
    "image": (3, 8, 8),
    "flat": (10,),
}

NUM_CLASSES = 3
NUM_SAMPLES = 18


def _make_data(input_shape, rng):
    features = rng.normal(size=(NUM_SAMPLES,) + input_shape)
    labels = rng.integers(0, NUM_CLASSES, size=NUM_SAMPLES)
    return features, labels


def _run(model, features, labels, fused, bits, seed=11):
    qmodel = quantize_model(model, bits=bits)
    snapshots = []

    def hook(epoch, qm, before, after):
        snapshots.append((before, after))

    result = calibrate_with_backprop(
        qmodel,
        features,
        labels,
        epochs=2,
        lr=0.05,
        batch_size=8,
        rng=np.random.default_rng(seed),
        epoch_hook=hook,
        fused=fused,
    )
    return qmodel, result, snapshots


@pytest.mark.parametrize("bits", [2, 4, 8])
@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_fused_equals_serial_bit_identically(name, bits):
    input_shape = MODEL_SHAPES[MODEL_REGISTRY[name]]
    rng = np.random.default_rng(3)
    features, labels = _make_data(input_shape, rng)
    model = build_model(name, input_shape, NUM_CLASSES, rng=np.random.default_rng(5))
    serial_model = copy.deepcopy(model)

    fused_q, fused_result, fused_snaps = _run(model, features, labels, True, bits)
    serial_q, serial_result, serial_snaps = _run(
        serial_model, features, labels, False, bits
    )

    assert fused_result.losses == serial_result.losses
    assert fused_result.accuracies == serial_result.accuracies

    assert len(fused_snaps) == len(serial_snaps) == 2
    for (fb, fa), (sb, sa) in zip(fused_snaps, serial_snaps):
        assert fb.keys() == sb.keys()
        for key in fb:
            np.testing.assert_array_equal(fb[key], sb[key], err_msg=f"before {key}")
            np.testing.assert_array_equal(fa[key], sa[key], err_msg=f"after {key}")

    assert fused_q.codes_digest() == serial_q.codes_digest()
    for key in serial_q.latent:
        np.testing.assert_array_equal(fused_q.latent[key], serial_q.latent[key])
        assert fused_q.qtensors[key].scale == serial_q.qtensors[key].scale
        assert fused_q.qtensors[key].zero_point == serial_q.qtensors[key].zero_point
    fused_state = fused_q.model.state_dict()
    for key, value in serial_q.model.state_dict().items():
        np.testing.assert_array_equal(fused_state[key], value)


def test_fused_releases_arena_unless_preowned():
    input_shape = MODEL_SHAPES["flat"]
    rng = np.random.default_rng(0)
    features, labels = _make_data(input_shape, rng)
    model = build_model("MLP", input_shape, NUM_CLASSES, rng=np.random.default_rng(1))
    qmodel = quantize_model(model, bits=4)
    calibrate_with_backprop(
        qmodel, features, labels, epochs=1, lr=0.05,
        rng=np.random.default_rng(0), fused=True,
    )
    assert qmodel.arena is None  # enabled for the call, released afterwards

    arena_model = quantize_model(
        build_model("MLP", input_shape, NUM_CLASSES, rng=np.random.default_rng(1)),
        bits=4,
        arena=True,
    )
    arena = arena_model.arena
    calibrate_with_backprop(
        arena_model, features, labels, epochs=1, lr=0.05,
        rng=np.random.default_rng(0), fused=True,
    )
    assert arena_model.arena is arena  # pre-owned arenas stay


def test_fused_interleaves_with_edge_flips():
    """QAT epochs between edge-side flips stay equivalent across paths."""
    input_shape = MODEL_SHAPES["flat"]
    rng = np.random.default_rng(2)
    features, labels = _make_data(input_shape, rng)
    quantized = {
        fused: quantize_model(
            build_model("MLP", input_shape, NUM_CLASSES, rng=np.random.default_rng(1)),
            bits=4,
        )
        for fused in (True, False)
    }
    flips = {
        name: np.random.default_rng(9).integers(-1, 2, size=qt.codes.shape)
        for name, qt in quantized[True].qtensors.items()
    }
    for fused, qmodel in quantized.items():
        calibrate_with_backprop(
            qmodel, features, labels, epochs=2, lr=0.05,
            rng=np.random.default_rng(4), fused=fused,
        )
        qmodel.apply_flips({k: v.copy() for k, v in flips.items()})
        calibrate_with_backprop(
            qmodel, features, labels, epochs=1, lr=0.05,
            rng=np.random.default_rng(6), fused=fused,
        )
    assert quantized[True].codes_digest() == quantized[False].codes_digest()
    for key in quantized[False].latent:
        np.testing.assert_array_equal(
            quantized[True].latent[key], quantized[False].latent[key]
        )
