"""Tests for the QuantizedModel wrapper and QAT calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.training import evaluate, train_classifier
from repro.quantization import (
    QuantizationConfig,
    QuantizedModel,
    calibrate_with_backprop,
    quantize_model,
)
from repro.quantization.qmodel import temporarily_quantized


def _make_trained_model(x, y, rng):
    model = nn.Sequential(nn.Dense(3, 16, rng=rng), nn.ReLU(), nn.Dense(16, 3, rng=rng))
    train_classifier(model, nn.SGD(model.parameters(), lr=0.1), x, y, epochs=40, rng=rng)
    return model


class TestQuantizedModel:
    def test_eight_bit_matches_full_precision_closely(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        fp_acc = evaluate(model, x, y)
        qmodel = quantize_model(model, bits=8)
        assert qmodel.evaluate(x, y) >= fp_acc - 0.05

    def test_lower_bits_use_less_memory(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        sizes = [quantize_model(model, bits=b).memory_bits() for b in (2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_apply_flips_changes_predictions_only_slightly(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        qmodel = quantize_model(model, bits=8)
        before = qmodel.predict(x)
        flips = {
            name: rng.integers(-1, 2, size=qt.codes.shape)
            for name, qt in qmodel.qtensors.items()
        }
        qmodel.apply_flips(flips)
        after = qmodel.predict(x)
        # Single-step bit flips perturb an 8-bit model only mildly.
        assert np.mean(before == after) > 0.5

    def test_apply_flips_unknown_name_rejected(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        with pytest.raises(KeyError):
            qmodel.apply_flips({"nope": np.zeros(3)})

    def test_clone_is_independent(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        clone = qmodel.clone()
        flips = {name: np.ones_like(qt.codes) for name, qt in clone.qtensors.items()}
        clone.apply_flips(flips)
        for name in qmodel.qtensors:
            assert not np.array_equal(clone.qtensors[name].codes, qmodel.qtensors[name].codes) or np.all(
                qmodel.qtensors[name].codes == qmodel.qtensors[name].config.qmax
            )

    def test_quantization_error_decreases_with_bits(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        err2 = quantize_model(model, bits=2).quantization_error()
        err8 = quantize_model(model, bits=8).quantization_error()
        assert err2 > err8

    def test_snapshot_codes_returns_copies(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        snap = qmodel.snapshot_codes()
        name = next(iter(snap))
        snap[name][...] = 99
        assert not np.array_equal(snap[name], qmodel.qtensors[name].codes)

    def test_num_parameters_matches_model(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        qmodel = quantize_model(model, bits=4)
        assert qmodel.num_parameters() == model.num_parameters()


class TestTemporarilyQuantized:
    def test_weights_restored_after_context(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        original = model.state_dict()
        with temporarily_quantized(model, bits=2):
            inside = model.state_dict()
            assert any(
                not np.allclose(original[name], inside[name]) for name in original
            )
        restored = model.state_dict()
        for name in original:
            np.testing.assert_allclose(original[name], restored[name])

    def test_restores_even_on_exception(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        original = model.state_dict()
        with pytest.raises(RuntimeError):
            with temporarily_quantized(model, bits=2):
                raise RuntimeError("boom")
        for name, values in model.state_dict().items():
            np.testing.assert_allclose(original[name], values)


class TestCalibrationWithBackprop:
    def test_calibration_recovers_low_bit_accuracy(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        qmodel = quantize_model(model, bits=2)
        before = qmodel.evaluate(x, y)
        result = calibrate_with_backprop(qmodel, x, y, epochs=15, lr=0.05, rng=rng)
        after = qmodel.evaluate(x, y)
        assert result.epochs == 15
        assert after >= before

    def test_epoch_hook_sees_code_movement(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        diffs = []

        def hook(epoch, qm, before, after):
            total = sum(int(np.sum(np.abs(after[k] - before[k]))) for k in before)
            diffs.append(total)

        calibrate_with_backprop(qmodel, x, y, epochs=5, lr=0.05, rng=rng, epoch_hook=hook)
        assert len(diffs) == 5
        assert any(d > 0 for d in diffs)

    def test_rejects_empty_data(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        with pytest.raises(ValueError):
            calibrate_with_backprop(qmodel, x[:0], y[:0], epochs=1)

    def test_rejects_bad_hyperparameters(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        with pytest.raises(ValueError):
            calibrate_with_backprop(qmodel, x, y, epochs=0)
        with pytest.raises(ValueError):
            calibrate_with_backprop(qmodel, x, y, epochs=1, lr=-1.0)
