"""Tests for the QuantizedModel wrapper and QAT calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn, runtime
from repro.quantization.quantizer import UniformQuantizer
from repro.nn.training import evaluate, train_classifier
from repro.quantization import (
    QuantizationConfig,
    QuantizedModel,
    calibrate_with_backprop,
    quantize_model,
)
from repro.quantization.qmodel import temporarily_quantized


def _make_trained_model(x, y, rng):
    model = nn.Sequential(nn.Dense(3, 16, rng=rng), nn.ReLU(), nn.Dense(16, 3, rng=rng))
    train_classifier(model, nn.SGD(model.parameters(), lr=0.1), x, y, epochs=40, rng=rng)
    return model


class TestQuantizedModel:
    def test_eight_bit_matches_full_precision_closely(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        fp_acc = evaluate(model, x, y)
        qmodel = quantize_model(model, bits=8)
        assert qmodel.evaluate(x, y) >= fp_acc - 0.05

    def test_lower_bits_use_less_memory(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        sizes = [quantize_model(model, bits=b).memory_bits() for b in (2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_apply_flips_changes_predictions_only_slightly(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        qmodel = quantize_model(model, bits=8)
        before = qmodel.predict(x)
        flips = {
            name: rng.integers(-1, 2, size=qt.codes.shape)
            for name, qt in qmodel.qtensors.items()
        }
        qmodel.apply_flips(flips)
        after = qmodel.predict(x)
        # Single-step bit flips perturb an 8-bit model only mildly.
        assert np.mean(before == after) > 0.5

    def test_apply_flips_unknown_name_rejected(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        with pytest.raises(KeyError):
            qmodel.apply_flips({"nope": np.zeros(3)})

    @pytest.mark.parametrize("arena", [False, True])
    def test_apply_flips_bad_entry_leaves_model_untouched(
        self, small_classification_data, rng, arena
    ):
        """A failed flip call must not partially apply earlier dict entries."""
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4, arena=arena)
        valid_name = next(iter(qmodel.qtensors))
        digest_before = qmodel.codes_digest()
        weights_before = {
            name: param.data.copy() for name, param in qmodel.model.named_parameters()
        }
        good = np.ones_like(qmodel.qtensors[valid_name].codes)
        for bad in (
            {valid_name: good, "nope": np.zeros(3)},                        # unknown name
            {valid_name: good, list(qmodel.qtensors)[-1]: np.zeros((1, 1))},  # bad shape
            {valid_name: good, list(qmodel.qtensors)[-1]:                   # bad values
             np.full_like(qmodel.qtensors[list(qmodel.qtensors)[-1]].codes, 2)},
        ):
            with pytest.raises((KeyError, ValueError)):
                qmodel.apply_flips(bad)
            assert qmodel.codes_digest() == digest_before
            for name, param in qmodel.model.named_parameters():
                np.testing.assert_array_equal(param.data, weights_before[name])

    @pytest.mark.parametrize("arena", [False, True])
    def test_update_latent_unknown_name_leaves_model_untouched(
        self, small_classification_data, rng, arena
    ):
        """A failed update must not partially apply earlier dict entries."""
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4, arena=arena)
        valid_name = next(iter(qmodel.latent))
        latent_before = {
            name: np.array(values) for name, values in qmodel.latent.items()
        }
        digest_before = qmodel.codes_digest()
        # The valid entry comes first: without up-front validation it would
        # have been applied before the unknown name raised.
        updates = {valid_name: np.ones_like(latent_before[valid_name]), "nope": np.zeros(3)}
        with pytest.raises(KeyError):
            qmodel.update_latent(updates)
        assert qmodel.codes_digest() == digest_before
        for name, values in latent_before.items():
            np.testing.assert_array_equal(np.asarray(qmodel.latent[name]), values)

    def test_clone_is_independent(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        clone = qmodel.clone()
        flips = {name: np.ones_like(qt.codes) for name, qt in clone.qtensors.items()}
        clone.apply_flips(flips)
        for name in qmodel.qtensors:
            assert not np.array_equal(clone.qtensors[name].codes, qmodel.qtensors[name].codes) or np.all(
                qmodel.qtensors[name].codes == qmodel.qtensors[name].config.qmax
            )

    def test_quantization_error_decreases_with_bits(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        err2 = quantize_model(model, bits=2).quantization_error()
        err8 = quantize_model(model, bits=8).quantization_error()
        assert err2 > err8

    def test_snapshot_codes_returns_copies(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        snap = qmodel.snapshot_codes()
        name = next(iter(snap))
        snap[name][...] = 99
        assert not np.array_equal(snap[name], qmodel.qtensors[name].codes)

    def test_num_parameters_matches_model(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        qmodel = quantize_model(model, bits=4)
        assert qmodel.num_parameters() == model.num_parameters()


class TestIncrementalSync:
    def _flips_for_one_tensor(self, qmodel, rng):
        name = next(
            name for name, qt in qmodel.qtensors.items() if qt.codes.ndim == 2
        )
        return {name: rng.integers(-1, 2, size=qmodel.qtensors[name].codes.shape)}

    def test_apply_flips_leaves_other_tensors_bitwise_unchanged(
        self, small_classification_data, rng
    ):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        flips = self._flips_for_one_tensor(qmodel, rng)
        (flipped_name,) = flips
        before = {
            name: param.data.copy() for name, param in qmodel.model.named_parameters()
        }
        codes_before = qmodel.snapshot_codes()
        qmodel.apply_flips(flips)
        for name, param in qmodel.model.named_parameters():
            if name == flipped_name:
                continue
            assert np.array_equal(param.data, before[name]), name
            assert np.array_equal(qmodel.qtensors[name].codes, codes_before[name])

    def test_incremental_matches_full_sync_logits(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        import copy

        pristine = copy.deepcopy(model)  # before either wrapper mutates the weights
        incremental = QuantizedModel(model, QuantizationConfig(bits=4), incremental=True)
        full = QuantizedModel(pristine, QuantizationConfig(bits=4), incremental=False)
        flips = self._flips_for_one_tensor(incremental, np.random.default_rng(3))
        incremental.apply_flips({k: v.copy() for k, v in flips.items()})
        full.apply_flips({k: v.copy() for k, v in flips.items()})
        state_a = incremental.model.state_dict()
        state_b = full.model.state_dict()
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name
        np.testing.assert_array_equal(incremental.forward(x), full.forward(x))

    def test_sync_is_noop_when_clean(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        assert not qmodel._dirty
        arrays_before = [param.data for param in qmodel.model.parameters()]
        qmodel.sync()
        arrays_after = [param.data for param in qmodel.model.parameters()]
        # A clean incremental sync must not even reallocate the weight arrays.
        assert all(a is b for a, b in zip(arrays_before, arrays_after))

    def test_restore_codes_round_trip(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        reference = qmodel.forward(x)
        snapshot = qmodel.snapshot_codes()
        qmodel.apply_flips(self._flips_for_one_tensor(qmodel, rng))
        qmodel.restore_codes(snapshot)
        np.testing.assert_array_equal(qmodel.forward(x), reference)

    def test_flip_then_qat_identical_across_modes(self, small_classification_data, rng):
        """Interleaved edge flips and QAT steps must not diverge between modes."""
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        import copy

        pristine = copy.deepcopy(model)  # before either wrapper mutates the weights
        incremental = QuantizedModel(model, QuantizationConfig(bits=4), incremental=True)
        full = QuantizedModel(pristine, QuantizationConfig(bits=4), incremental=False)
        flips = self._flips_for_one_tensor(incremental, np.random.default_rng(7))
        for qmodel in (incremental, full):
            qmodel.apply_flips({k: v.copy() for k, v in flips.items()})
            calibrate_with_backprop(
                qmodel, x, y, epochs=2, lr=0.05, rng=np.random.default_rng(11)
            )
        for name in incremental.qtensors:
            np.testing.assert_array_equal(
                incremental.qtensors[name].codes, full.qtensors[name].codes
            )
            np.testing.assert_array_equal(incremental.latent[name], full.latent[name])

    def test_restore_codes_collapses_latent_like_full_mode(
        self, small_classification_data, rng
    ):
        """Rollback must leave identical latent state in both sync modes."""
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        import copy

        pristine = copy.deepcopy(model)  # before either wrapper mutates the weights
        incremental = QuantizedModel(model, QuantizationConfig(bits=8), incremental=True)
        full = QuantizedModel(pristine, QuantizationConfig(bits=8), incremental=False)
        for qmodel in (incremental, full):
            snapshot = qmodel.snapshot_codes()
            # A delta too small to move any 8-bit code: codes match the
            # snapshot, but the latent view has drifted.
            qmodel.update_latent(
                {name: np.full_like(values, 1e-9) for name, values in qmodel.latent.items()}
            )
            qmodel.restore_codes(snapshot)
        assert incremental.quantization_error() == pytest.approx(full.quantization_error())
        for name in incremental.latent:
            np.testing.assert_array_equal(incremental.latent[name], full.latent[name])

    def test_force_sync_still_rewrites_everything(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        # Corrupt a model weight behind the wrapper's back; force=True repairs it.
        param = next(iter(qmodel.model.parameters()))
        param.data = param.data + 1.0
        qmodel.sync()  # incremental: clean, so the corruption survives
        assert np.max(np.abs(param.data)) > 0.9
        qmodel.sync(force=True)
        name = next(name for name, p in qmodel.model.named_parameters() if p is param)
        np.testing.assert_array_equal(param.data, qmodel.qtensors[name].dequantize())


class TestDtypeRoundTrips:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_quantize_dequantize_round_trip(self, dtype, bits):
        rng = np.random.default_rng(12)
        with runtime.use_dtype(dtype):
            values = runtime.asarray(rng.normal(size=(32, 16)))
            quantizer = UniformQuantizer(QuantizationConfig(bits=bits))
            qt = quantizer.quantize(values)
            restored = qt.dequantize()
            assert restored.dtype == np.dtype(dtype)
            assert qt.codes.min() >= qt.config.qmin
            assert qt.codes.max() <= qt.config.qmax
            # Uniform quantization error is bounded by half a step.
            assert float(np.max(np.abs(restored - values))) <= 0.5 * qt.scale * (1 + 1e-5)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantized_model_round_trip(self, small_classification_data, dtype):
        x, y = small_classification_data
        with runtime.use_dtype(dtype):
            rng = np.random.default_rng(5)
            model = nn.Sequential(nn.Dense(3, 8, rng=rng), nn.ReLU(), nn.Dense(8, 3, rng=rng))
            qmodel = quantize_model(model, bits=8)
            for name, param in qmodel.model.named_parameters():
                assert param.data.dtype == np.dtype(dtype)
                np.testing.assert_array_equal(
                    param.data, qmodel.qtensors[name].dequantize()
                )
            assert qmodel.forward(x).dtype == np.dtype(dtype)


class TestTemporarilyQuantized:
    def test_weights_restored_after_context(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        original = model.state_dict()
        with temporarily_quantized(model, bits=2):
            inside = model.state_dict()
            assert any(
                not np.allclose(original[name], inside[name]) for name in original
            )
        restored = model.state_dict()
        for name in original:
            np.testing.assert_allclose(original[name], restored[name])

    def test_restores_even_on_exception(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        original = model.state_dict()
        with pytest.raises(RuntimeError):
            with temporarily_quantized(model, bits=2):
                raise RuntimeError("boom")
        for name, values in model.state_dict().items():
            np.testing.assert_allclose(original[name], values)


class TestCalibrationWithBackprop:
    def test_calibration_recovers_low_bit_accuracy(self, small_classification_data, rng):
        x, y = small_classification_data
        model = _make_trained_model(x, y, rng)
        qmodel = quantize_model(model, bits=2)
        before = qmodel.evaluate(x, y)
        result = calibrate_with_backprop(qmodel, x, y, epochs=15, lr=0.05, rng=rng)
        after = qmodel.evaluate(x, y)
        assert result.epochs == 15
        assert after >= before

    def test_epoch_hook_sees_code_movement(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        diffs = []

        def hook(epoch, qm, before, after):
            total = sum(int(np.sum(np.abs(after[k] - before[k]))) for k in before)
            diffs.append(total)

        calibrate_with_backprop(qmodel, x, y, epochs=5, lr=0.05, rng=rng, epoch_hook=hook)
        assert len(diffs) == 5
        assert any(d > 0 for d in diffs)

    def test_rejects_empty_data(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        with pytest.raises(ValueError):
            calibrate_with_backprop(qmodel, x[:0], y[:0], epochs=1)

    def test_rejects_bad_hyperparameters(self, small_classification_data, rng):
        x, y = small_classification_data
        qmodel = quantize_model(_make_trained_model(x, y, rng), bits=4)
        with pytest.raises(ValueError):
            calibrate_with_backprop(qmodel, x, y, epochs=0)
        with pytest.raises(ValueError):
            calibrate_with_backprop(qmodel, x, y, epochs=1, lr=-1.0)
