"""Tests for uniform quantization of tensors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import QuantizationConfig, QuantizedTensor, UniformQuantizer
from repro.quantization.quantizer import quantize_state


class TestQuantizationConfig:
    def test_symmetric_range(self):
        cfg = QuantizationConfig(bits=4, symmetric=True)
        assert cfg.qmin == -7
        assert cfg.qmax == 7
        assert cfg.num_levels == 16

    def test_asymmetric_range(self):
        cfg = QuantizationConfig(bits=4, symmetric=False)
        assert cfg.qmin == 0
        assert cfg.qmax == 15

    def test_rejects_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationConfig(bits=1)
        with pytest.raises(ValueError):
            QuantizationConfig(bits=64)


class TestUniformQuantizer:
    def test_codes_within_range(self, rng):
        for bits in (2, 4, 8):
            cfg = QuantizationConfig(bits=bits)
            qt = UniformQuantizer(cfg).quantize(rng.normal(size=(10, 10)))
            assert qt.codes.min() >= cfg.qmin
            assert qt.codes.max() <= cfg.qmax

    def test_roundtrip_error_shrinks_with_bits(self, rng):
        values = rng.normal(size=(50, 50))
        errors = []
        for bits in (2, 4, 8):
            quantizer = UniformQuantizer(QuantizationConfig(bits=bits))
            errors.append(quantizer.quantization_error(values))
        assert errors[0] > errors[1] > errors[2]

    def test_eight_bit_roundtrip_is_accurate(self, rng):
        values = rng.normal(size=(20, 20))
        quantizer = UniformQuantizer(QuantizationConfig(bits=8))
        reconstructed = quantizer.fake_quantize(values)
        assert np.max(np.abs(values - reconstructed)) < np.max(np.abs(values)) / 100

    def test_zero_tensor(self):
        qt = UniformQuantizer(QuantizationConfig(bits=4)).quantize(np.zeros((3, 3)))
        np.testing.assert_array_equal(qt.codes, 0)
        np.testing.assert_array_equal(qt.dequantize(), 0.0)

    def test_asymmetric_covers_min_max(self, rng):
        values = rng.uniform(2.0, 5.0, size=(100,))
        quantizer = UniformQuantizer(QuantizationConfig(bits=8, symmetric=False))
        reconstructed = quantizer.fake_quantize(values)
        assert abs(reconstructed.min() - values.min()) < 0.05
        assert abs(reconstructed.max() - values.max()) < 0.05

    def test_asymmetric_zero_point_stays_in_code_range(self):
        """Extremely skewed ranges must not push the zero point out of range.

        A narrow all-positive band far from the origin used to produce a
        zero point of about -15000 at 4 bits; the zero-inclusive range plus
        the clamp pins it inside ``[qmin, qmax]``.
        """
        cfg = QuantizationConfig(bits=4, symmetric=False)
        quantizer = UniformQuantizer(cfg)
        for values in (
            np.linspace(1000.0, 1001.0, 32),   # positive band, tiny spread
            np.linspace(-2001.0, -2000.0, 32),  # negative band
            np.array([5e8, 5e8 + 1.0]),         # pathological magnitude
        ):
            qt = quantizer.quantize(values)
            assert cfg.qmin <= qt.zero_point <= cfg.qmax, values[:2]
            assert qt.codes.min() >= cfg.qmin and qt.codes.max() <= cfg.qmax
            # Reconstruction error stays bounded by half a step.
            assert np.max(np.abs(qt.dequantize() - values)) <= qt.scale / 2 + 1e-9

    @pytest.mark.parametrize("symmetric", [True, False])
    def test_subnormal_range_does_not_crash(self, symmetric):
        """Scale underflow to 0.0 falls back to unit scale, like zero tensors."""
        quantizer = UniformQuantizer(QuantizationConfig(bits=4, symmetric=symmetric))
        values = np.full(5, 5e-324)  # smallest positive subnormal
        qt = quantizer.quantize(values)
        assert qt.scale == 1.0
        assert qt.zero_point == 0
        np.testing.assert_array_equal(qt.codes, 0)
        # The segmented path agrees.
        scales, zero_points = quantizer.quantize_segments(values, np.array([0, 5]))
        assert scales[0] == 1.0 and zero_points[0] == 0

    def test_asymmetric_range_includes_zero(self):
        """The affine scheme quantizes over [min(v, 0), max(v, 0)]."""
        cfg = QuantizationConfig(bits=8, symmetric=False)
        quantizer = UniformQuantizer(cfg)
        values = np.linspace(2.0, 5.0, 50)
        qt = quantizer.quantize(values)
        assert qt.scale == pytest.approx(5.0 / (cfg.qmax - cfg.qmin))
        assert qt.zero_point == 0
        # Zero itself is exactly representable.
        assert 0.0 in qt.dequantize() or qt.scale * (0 - qt.zero_point) == 0.0

    def test_paper_figure2_example(self):
        # Figure 2: with 3-bit quantization over levels spaced by 10, the value
        # 17.831 falls in [15, 25) and maps to the level 20.
        levels = np.array([-30, -20, -10, 0, 10, 20, 30], dtype=float)
        quantizer = UniformQuantizer(QuantizationConfig(bits=3, symmetric=True))
        qt = quantizer.quantize(levels)
        assert qt.scale == pytest.approx(10.0)
        code = int(np.clip(round(17.831 / qt.scale), qt.config.qmin, qt.config.qmax))
        assert qt.scale * code == pytest.approx(20.0)

    @settings(max_examples=50, deadline=None)
    @given(
        bits=st.sampled_from([2, 3, 4, 8]),
        data=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    )
    def test_property_roundtrip_error_bounded_by_half_scale(self, bits, data):
        """Quantization error of any value inside the range is at most scale/2."""
        values = np.array(data)
        quantizer = UniformQuantizer(QuantizationConfig(bits=bits))
        qt = quantizer.quantize(values)
        reconstructed = qt.dequantize()
        assert np.all(np.abs(values - reconstructed) <= qt.scale / 2 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        bits=st.sampled_from([2, 4, 8]),
        data=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    )
    def test_property_codes_in_range(self, bits, data):
        cfg = QuantizationConfig(bits=bits)
        qt = UniformQuantizer(cfg).quantize(np.array(data))
        assert qt.codes.min() >= cfg.qmin
        assert qt.codes.max() <= cfg.qmax


class TestQuantizedTensor:
    def _make(self, bits=4):
        cfg = QuantizationConfig(bits=bits)
        return UniformQuantizer(cfg).quantize(np.linspace(-1, 1, 10)), cfg

    def test_apply_flips_moves_codes(self):
        qt, _ = self._make()
        before = qt.codes.copy()
        flips = np.zeros_like(before)
        flips[0] = 1
        flips[1] = -1
        qt.apply_flips(flips)
        assert qt.codes[0] == min(before[0] + 1, qt.config.qmax)
        assert qt.codes[1] == max(before[1] - 1, qt.config.qmin)

    def test_apply_flips_clips_at_range(self):
        qt, cfg = self._make(bits=2)
        qt.apply_flips(np.ones_like(qt.codes))
        qt.apply_flips(np.ones_like(qt.codes))
        qt.apply_flips(np.ones_like(qt.codes))
        assert qt.codes.max() <= cfg.qmax

    def test_apply_flips_rejects_large_values(self):
        qt, _ = self._make()
        with pytest.raises(ValueError):
            qt.apply_flips(np.full_like(qt.codes, 2))

    def test_apply_flips_rejects_wrong_shape(self):
        qt, _ = self._make()
        with pytest.raises(ValueError):
            qt.apply_flips(np.zeros(3, dtype=np.int64))

    def test_copy_is_independent(self):
        qt, _ = self._make()
        clone = qt.copy()
        clone.apply_flips(np.ones_like(clone.codes))
        assert not np.array_equal(clone.codes, qt.codes)

    def test_memory_bits(self):
        qt, _ = self._make(bits=4)
        assert qt.memory_bits() == 10 * 4


def test_quantize_state_preserves_names(rng):
    state = {"a.weight": rng.normal(size=(3, 3)), "b.bias": rng.normal(size=(3,))}
    tensors = quantize_state(state, QuantizationConfig(bits=8))
    assert {t.name for t in tensors} == {"a.weight", "b.bias"}
