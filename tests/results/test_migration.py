"""Migration round-trip: the committed JSON silos ingest losslessly.

These tests use the *committed* ``BENCH_perf.json`` and
``tests/golden/fixtures/golden.json`` verbatim — not synthetic replicas —
so the migration path is proven against the exact bytes it must carry.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.results import (
    REPORT_PSEUDO_BENCHMARK,
    ResultsStore,
    export_report,
    golden_digest_items,
    ingest_golden_digests,
    ingest_report,
    load_json_report,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_perf.json"
GOLDEN_JSON = REPO_ROOT / "tests" / "golden" / "fixtures" / "golden.json"


@pytest.fixture(scope="module")
def report() -> dict:
    return json.loads(BENCH_JSON.read_text())


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_JSON.read_text())


class TestBenchReportMigration:
    def test_ingest_row_counts(self, report):
        entries = [
            key
            for key, value in report.items()
            if key != "config" and isinstance(value, dict)
        ]
        with ResultsStore() as store:
            ingest_report(store, report, timestamp="t0")
            counts = store.counts()
            # One run per benchmark entry + one pseudo-run for the report
            # scalars/config.
            assert counts["runs"] == len(entries) + 1
            assert counts["metrics"] > 0 and counts["configs"] > 0
            assert store.benchmarks(kind="entry") == entries
            report_runs = store.runs(REPORT_PSEUDO_BENCHMARK, kind="report")
            assert len(report_runs) == 1

    def test_export_is_semantically_identical(self, report):
        """JSON -> rows -> JSON: same keys, same values, same nesting."""
        with ResultsStore() as store:
            ingest_report(store, report, timestamp="t0")
            assert export_report(store) == report

    def test_export_preserves_key_order(self, report):
        with ResultsStore() as store:
            ingest_report(store, report, timestamp="t0")
            assert list(export_report(store)) == list(report)

    def test_reingest_is_idempotent(self, report):
        with ResultsStore() as store:
            ingest_report(store, report, timestamp="t0")
            counts = store.counts()
            ingest_report(store, report, timestamp="t0")  # identical: collapses
            assert store.counts() == counts

    def test_latest_rows_win_the_export(self, report):
        """A newer recording of an entry replaces it in the export view."""
        with ResultsStore() as store:
            ingest_report(store, report, timestamp="t0")
            updated = dict(report["qat"])
            updated["speedup"] = 9.99
            store.record_run("qat", updated, timestamp="t1")
            exported = export_report(store)
            assert exported["qat"]["speedup"] == 9.99
            # Every other entry is untouched.
            for key, value in report.items():
                if key != "qat":
                    assert exported[key] == value


class TestGoldenDigestMigration:
    def test_fixture_digest_inventory(self, golden):
        """The fixture pins flips + stream splits; every digest is covered."""
        items = golden_digest_items(golden)
        flips = golden["flip_decisions"]
        batches = golden["stream_splits"]["batches"]
        expected = 2 + len(flips["epoch_digests"]) + 2 * len(batches)
        assert len(items) == expected
        assert items["flip/initial"] == flips["initial_digest"]
        assert items["flip/final"] == flips["final_digest"]
        for batch in batches:
            index = batch["index"]
            assert items[f"split/batch{index}/train"] == batch["features_digest"]
            assert items[f"split/batch{index}/test"] == batch["test_features_digest"]

    def test_ingest_pins_all_digests(self, golden):
        with ResultsStore() as store:
            pinned = ingest_golden_digests(store, golden)
            assert store.pinned_digests() == pinned
            assert store.counts()["digests"] == len(pinned)

    def test_reingest_identical_fixture_is_noop(self, golden):
        with ResultsStore() as store:
            ingest_golden_digests(store, golden)
            counts = store.counts()
            ingest_golden_digests(store, golden)
            assert store.counts() == counts


class TestJsonLoader:
    """The legacy loader lives in repro.results now; same recovery contract."""

    def test_round_trips_valid_report(self, tmp_path, report):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert load_json_report(path) == report

    def test_missing_file_is_empty_report(self, tmp_path):
        assert load_json_report(tmp_path / "nope.json") == {}

    def test_truncated_file_backed_up(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text('{"qat": {"speedup": 1.')
        with pytest.warns(UserWarning, match="not valid JSON"):
            assert load_json_report(path) == {}
        assert path.with_suffix(".json.corrupt").exists()
