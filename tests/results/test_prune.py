"""Retention tests: prune keeps the newest N, never touches protected rows.

The store accumulates one run per benchmark per CI push forever unless
pruned; ``ResultsStore.prune`` is the retention tool.  Its contract has two
halves pinned here: age-based deletion (newest ``keep_last_per_benchmark``
per benchmark survive) and absolute protection — labeled trajectory runs,
runs referenced by a pinned digest, and every pinned golden digest row
survive *regardless* of age.
"""

from __future__ import annotations

import pytest

from repro.results import PruneStats, ResultsStore


def _stamp(index: int) -> str:
    """Monotonic fake timestamps so insertion order is also age order."""
    return f"2026-01-{index + 1:02d}T00:00:00Z"


def _fill(store: ResultsStore, benchmark: str, count: int, **kwargs) -> list:
    return [
        store.record_run(
            benchmark,
            metrics={"speedup": 1.0 + index},
            config={"index": index},
            timestamp=_stamp(index),
            digests={f"{benchmark}_codes_{index}": f"digest-{index:04d}"},
            **kwargs,
        )
        for index in range(count)
    ]


class TestPrune:
    def test_keeps_newest_per_benchmark(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        _fill(store, "bench_a", 6)
        _fill(store, "bench_b", 3)
        stats = store.prune(2)
        assert isinstance(stats, PruneStats)
        assert stats.runs_deleted == 4 + 1
        assert stats.runs_kept == 2 + 2
        # The survivors are the newest ones of each benchmark.
        for benchmark, newest in (("bench_a", {4, 5}), ("bench_b", {1, 2})):
            kept = {
                run.timestamp for run in store.runs(benchmark=benchmark)
            }
            assert kept == {_stamp(index) for index in newest}
        store.close()

    def test_labeled_runs_are_protected(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        run_ids = _fill(store, "bench_a", 5)
        store.set_annotations(run_ids[0], label="PR 3", lever="the oldest milestone")
        stats = store.prune(1)
        assert stats.runs_protected == 1
        assert stats.runs_deleted == 3
        survivors = {run.run_id for run in store.runs(benchmark="bench_a")}
        assert run_ids[0] in survivors  # oldest, but labeled
        assert run_ids[4] in survivors  # newest
        store.close()

    def test_pinned_golden_digests_are_never_pruned(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        run_ids = _fill(store, "bench_a", 5)
        store.pin_digest("bench_a_codes", "golden-digest-value")
        # Pin a digest that *references* an old run: that run becomes
        # undeletable too (the digest row would otherwise dangle).
        store.connection.execute(
            "UPDATE digests SET pinned = 1 WHERE run_id = ?", (run_ids[1],)
        )
        store.connection.commit()

        stats = store.prune(1)
        assert stats.runs_protected == 1
        pinned = store.pinned_digests()
        assert pinned["bench_a_codes"] == "golden-digest-value"
        assert any(name.endswith("_codes_1") for name in pinned)
        survivors = {run.run_id for run in store.runs(benchmark="bench_a")}
        assert run_ids[1] in survivors
        # The doomed runs' unpinned provenance digest rows went with them.
        remaining = {record.name for record in store.digest_records()}
        assert "bench_a_codes_0" not in remaining
        assert "bench_a_codes_1" in remaining
        store.close()

    def test_vacuum_reclaims_disk(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = ResultsStore(path)
        _fill(store, "bench_a", 200)
        store.close()
        before = path.stat().st_size
        store = ResultsStore(path)
        stats = store.prune(1, vacuum=True)
        store.close()
        assert stats.vacuumed
        assert path.stat().st_size < before

    def test_keep_must_be_positive(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        with pytest.raises(ValueError, match="keep_last_per_benchmark"):
            store.prune(0)
        store.close()

    def test_prune_on_empty_store_is_a_no_op(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        stats = store.prune(3)
        assert stats.runs_deleted == 0
        assert stats.runs_kept == 0
        store.close()


class TestPruneCli:
    def test_perf_report_prune_command(self, tmp_path, capsys):
        from tools.perf_report import main

        path = tmp_path / "store.sqlite"
        store = ResultsStore(path)
        _fill(store, "bench_a", 5)
        store.pin_digest("bench_a_codes", "golden")
        store.close()

        assert main(["prune", "--store", str(path), "--keep", "2"]) == 0
        out = capsys.readouterr().out
        assert "pruned 3 run(s)" in out
        assert "kept 2" in out

        store = ResultsStore(path)
        assert len(store.runs(benchmark="bench_a")) == 2
        assert store.pinned_digests() == {"bench_a_codes": "golden"}
        store.close()
