"""Regression-gate tests: the trend query must pass healthy trajectories
and fail injected slowdowns (the pass/fail pair CI relies on)."""

from __future__ import annotations

import pytest

from repro.results import ResultsStore, check_regression


def _seed(store: ResultsStore, values, benchmark="bench", mode="full", kind="entry"):
    for index, value in enumerate(values):
        store.record_run(
            benchmark, {"speedup": value},
            timestamp=f"2026-01-{index + 1:02d}T00:00:00+00:00",
            mode=mode, kind=kind,
        )


class TestGateDecision:
    def test_healthy_trajectory_passes(self):
        with ResultsStore() as store:
            _seed(store, [1.50, 1.62, 1.55, 1.58])
            verdict = check_regression(store, "bench")
            assert verdict.ok
            assert verdict.latest == 1.58
            assert "ok" in verdict.describe()

    def test_injected_slowdown_fails(self):
        with ResultsStore() as store:
            _seed(store, [1.50, 1.62, 1.55, 0.80])
            verdict = check_regression(store, "bench")
            assert not verdict.ok
            assert "REGRESSION" in verdict.describe()
            assert verdict.latest == 0.80
            assert verdict.trailing_median == 1.55
            assert verdict.threshold == pytest.approx(0.9 * 1.55)

    def test_tolerance_absorbs_noise(self):
        with ResultsStore() as store:
            # 4% below the median: inside the default 10% tolerance.
            _seed(store, [1.50, 1.50, 1.44])
            assert check_regression(store, "bench").ok
            assert not check_regression(store, "bench", tolerance=1.0).ok

    def test_window_limits_the_trailing_median(self):
        with ResultsStore() as store:
            # Ancient glory (3.0) must age out of a window of 2.
            _seed(store, [3.0, 1.0, 1.0, 1.0])
            assert check_regression(store, "bench", window=2).ok
            # A wide window still sees it; median of [3,1,1] is 1.0 → still ok.
            assert check_regression(store, "bench", window=5).ok

    def test_median_resists_single_outlier(self):
        with ResultsStore() as store:
            # One freak 9.0 must not fail an otherwise stable trajectory.
            _seed(store, [1.5, 9.0, 1.5, 1.5, 1.5])
            assert check_regression(store, "bench").ok


class TestVacuousAndFiltered:
    def test_empty_trajectory_passes_vacuously(self):
        with ResultsStore() as store:
            verdict = check_regression(store, "unrecorded")
            assert verdict.ok
            assert "no trend" in verdict.reason

    def test_single_row_passes_vacuously(self):
        with ResultsStore() as store:
            _seed(store, [1.5])
            verdict = check_regression(store, "bench")
            assert verdict.ok and verdict.trailing_median is None

    def test_smoke_rows_do_not_poison_the_trend(self):
        with ResultsStore() as store:
            _seed(store, [1.5, 1.5])
            store.record_run(
                "bench", {"speedup": 0.01},
                timestamp="2026-02-01T00:00:00+00:00", mode="smoke",
            )
            verdict = check_regression(store, "bench")
            assert verdict.ok
            assert verdict.values == [1.5, 1.5]

    def test_legacy_trajectory_rows_are_excluded(self):
        """Transcribed pre-store history is documentation, not gate evidence."""
        with ResultsStore() as store:
            _seed(store, [9.0, 9.0], kind="trajectory")
            _seed(store, [1.5, 1.5], benchmark="bench2")
            assert check_regression(store, "bench").values == []
            assert check_regression(store, "bench2").values == [1.5, 1.5]

    def test_parameter_validation(self):
        with ResultsStore() as store:
            with pytest.raises(ValueError, match="window"):
                check_regression(store, "bench", window=0)
            with pytest.raises(ValueError, match="tolerance"):
                check_regression(store, "bench", tolerance=0.0)
