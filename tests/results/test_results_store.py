"""Property tests for the unified experiment store (repro.results.store)."""

from __future__ import annotations

import sqlite3

import pytest

from repro.results import (
    Digest,
    DigestConflictError,
    ResultsStore,
    StoreError,
    decode_value,
    encode_value,
    flatten_payload,
    unflatten_payload,
)
from repro.results.store import SCHEMA_VERSION


class TestValueRoundTrip:
    """Every metric dtype must decode back to an *equal* python value."""

    @pytest.mark.parametrize(
        "value",
        [
            0.1,
            -1.5,
            1.6375432100000001,  # needs full repr precision
            3.141592653589793,
            float("inf"),
            float("-inf"),
            1e-308,
            0,
            1,
            -42,
            10**20,
            True,
            False,
            "",
            "hello",
            "true",  # a *string* "true" must not decode as bool
            "1.5",
            None,
            [1, 2.5, "x", None],
            {"nested": {"deep": [1, 2]}},
            [],
            {},
        ],
    )
    def test_encode_decode_identity(self, value):
        text, dtype = encode_value(value)
        decoded = decode_value(text, dtype)
        assert decoded == value
        assert type(decoded) is type(value) or isinstance(value, Digest)

    def test_float_round_trip_is_bit_exact(self):
        value = 0.1 + 0.2  # 0.30000000000000004
        text, dtype = encode_value(value)
        assert dtype == "float"
        assert decode_value(text, dtype) == value
        assert decode_value(text, dtype).hex() == value.hex()

    def test_digest_round_trip_keeps_marker_type(self):
        digest = Digest("abc123")
        text, dtype = encode_value(digest)
        assert dtype == "digest"
        decoded = decode_value(text, dtype)
        assert isinstance(decoded, Digest)
        assert decoded == "abc123"

    def test_bool_is_not_int(self):
        # bool is an int subclass; the encoder must check bool first.
        assert encode_value(True)[1] == "bool"
        assert encode_value(1)[1] == "int"
        assert decode_value(*encode_value(True)) is True

    def test_unknown_dtype_raises(self):
        with pytest.raises(ValueError, match="unknown stored dtype"):
            decode_value("x", "complex")

    def test_stored_metrics_round_trip(self):
        payload = {
            "speedup": 1.637,
            "steps": 1200,
            "ok": True,
            "note": "full run",
            "digest": Digest("deadbeef"),
            "series": [0.1, 0.2],
            "nested": {"a": 1, "b": {"c": 2.5}},
        }
        with ResultsStore() as store:
            run_id = store.record_run("bench", payload, timestamp="t0")
            assert store.run_metrics(run_id) == payload
            assert isinstance(store.run_metrics(run_id)["digest"], Digest)


class TestFlatten:
    def test_flatten_unflatten_inverse(self):
        payload = {
            "config": {"bits": [2, 4], "inner": {"x": 1}},
            "speedup": 1.5,
            "empty": {},
            "weird": {"a.b": 1},  # dotted key: kept whole as json
        }
        flat = flatten_payload(payload)
        assert unflatten_payload(flat) == payload
        assert flat["config.inner.x"] == 1
        assert flat["empty"] == {}
        assert flat["weird"] == {"a.b": 1}

    def test_top_level_dotted_key_rejected(self):
        with pytest.raises(ValueError, match="top-level payload keys"):
            flatten_payload({"a.b": 1})


class TestSchemaLifecycle:
    def test_schema_idempotent_on_reopen(self, tmp_path):
        """Re-opening an existing store must not alter rows or schema."""
        path = tmp_path / "results.sqlite"
        with ResultsStore(path) as store:
            store.record_run("bench", {"speedup": 1.5}, timestamp="t0")
            counts = store.counts()
        for _ in range(3):
            with ResultsStore(path) as reopened:
                assert reopened.counts() == counts
                version = reopened.connection.execute(
                    "PRAGMA user_version"
                ).fetchone()[0]
                assert version == SCHEMA_VERSION
                assert reopened.run_metrics(1) == {"speedup": 1.5}

    def test_corrupt_file_backed_up_and_restarted(self, tmp_path):
        """A truncated/corrupt store is preserved as .corrupt, not clobbered."""
        path = tmp_path / "results.sqlite"
        garbage = b"this is not a sqlite database, it is evidence"
        path.write_bytes(garbage)
        with pytest.warns(UserWarning, match="not a usable results store"):
            store = ResultsStore(path)
        try:
            # Fresh, working store...
            store.record_run("bench", {"speedup": 1.0}, timestamp="t0")
            assert store.counts()["runs"] == 1
        finally:
            store.close()
        # ...and the corrupt bytes survived for inspection.
        backup = path.with_name(path.name + ".corrupt")
        assert backup.read_bytes() == garbage

    def test_incompatible_schema_version_backed_up(self, tmp_path):
        path = tmp_path / "results.sqlite"
        conn = sqlite3.connect(path)  # deliberately bypasses the store to plant a foreign file
        conn.execute("PRAGMA user_version=99")
        conn.execute("CREATE TABLE alien (x)")
        conn.commit()
        conn.close()
        with pytest.warns(UserWarning, match="not a usable results store"):
            store = ResultsStore(path)
        store.close()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_in_memory_store_needs_no_file(self):
        with ResultsStore() as store:
            assert store.counts()["runs"] == 0


class TestRunIdentity:
    def test_identical_duplicate_collapses(self):
        with ResultsStore() as store:
            a = store.record_run("bench", {"v": 1.0}, {"bits": 4}, timestamp="t0")
            b = store.record_run("bench", {"v": 1.0}, {"bits": 4}, timestamp="t0")
            assert a == b
            assert store.counts()["runs"] == 1

    def test_conflicting_duplicate_raises(self):
        with ResultsStore() as store:
            store.record_run("bench", {"v": 1.0}, timestamp="t0")
            with pytest.raises(ValueError, match="conflicting"):
                store.record_run("bench", {"v": 2.0}, timestamp="t0")

    def test_series_separates_identities(self):
        with ResultsStore() as store:
            store.record_run("bench", {"v": 1.0}, series="a", timestamp="t0")
            store.record_run("bench", {"v": 2.0}, series="b", timestamp="t0")
            assert store.counts()["runs"] == 2

    def test_unknown_kind_rejected(self):
        with ResultsStore() as store:
            with pytest.raises(ValueError, match="kind"):
                store.record_run("bench", {"v": 1.0}, kind="mystery", timestamp="t0")


class TestWriteRetry:
    """Busy-retry discipline, mirrored from DeviceStateStore."""

    def test_transient_write_failure_is_retried(self):
        with ResultsStore(write_retries=5, retry_sleep=0.0) as store:
            failures = {"left": 2}

            def flaky(sql):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise sqlite3.OperationalError("injected: database is locked")

            store.before_write = flaky
            run_id = store.record_run("bench", {"v": 1.0}, timestamp="t0")
            store.before_write = None
            assert failures["left"] == 0
            assert store.run_metrics(run_id) == {"v": 1.0}

    def test_persistent_write_failure_raises_store_error(self):
        with ResultsStore(write_retries=3, retry_sleep=0.0) as store:
            calls = {"n": 0}

            def always_fail(sql):
                calls["n"] += 1
                raise sqlite3.OperationalError("disk I/O error")

            store.before_write = always_fail
            with pytest.raises(StoreError, match="after 3 attempts"):
                store.record_run("bench", {"v": 1.0}, timestamp="t0")
            assert calls["n"] == 3
            store.before_write = None
            # The failed write left nothing half-committed.
            assert store.counts()["runs"] == 0


class TestPinnedDigests:
    def test_pin_same_digest_is_noop(self):
        with ResultsStore() as store:
            store.pin_digest("flip/final", "abc")
            store.pin_digest("flip/final", "abc")
            assert store.pinned_digests() == {"flip/final": "abc"}

    def test_pin_conflicting_digest_raises(self):
        with ResultsStore() as store:
            store.pin_digest("flip/final", "abc")
            with pytest.raises(DigestConflictError, match="already pinned"):
                store.pin_digest("flip/final", "DIFFERENT")

    def test_repin_is_explicit(self):
        with ResultsStore() as store:
            store.pin_digest("flip/final", "abc")
            store.pin_digest("flip/final", "DIFFERENT", repin=True)
            assert store.pinned_digests() == {"flip/final": "DIFFERENT"}


class TestMerge:
    """merge_from mirrors merge_results: collapse identical, reject conflicts."""

    def _make(self, value: float, timestamp: str = "t0") -> ResultsStore:
        store = ResultsStore()
        store.record_run("bench", {"v": value}, timestamp=timestamp)
        return store

    def test_merge_collapses_identical_runs(self):
        a, b = self._make(1.0), self._make(1.0)
        try:
            stats = a.merge_from(b)
            assert (stats.runs_added, stats.runs_collapsed) == (0, 1)
            assert a.counts()["runs"] == 1
        finally:
            a.close()
            b.close()

    def test_merge_adds_new_runs(self):
        a, b = self._make(1.0, "t0"), self._make(2.0, "t1")
        try:
            stats = a.merge_from(b)
            assert (stats.runs_added, stats.runs_collapsed) == (1, 0)
            assert [v for _, v in a.metric_trajectory("bench", "v")] == [1.0, 2.0]
        finally:
            a.close()
            b.close()

    def test_merge_rejects_conflicting_runs(self):
        a, b = self._make(1.0), self._make(2.0)
        try:
            with pytest.raises(ValueError, match="conflicting"):
                a.merge_from(b)
        finally:
            a.close()
            b.close()

    def test_merge_rejects_conflicting_pinned_digests(self):
        with ResultsStore() as a, ResultsStore() as b:
            a.pin_digest("flip/final", "abc")
            b.pin_digest("flip/final", "DIFFERENT")
            with pytest.raises(DigestConflictError, match="disagree"):
                a.merge_from(b)

    def test_merge_collapses_identical_pins_and_adds_new(self):
        with ResultsStore() as a, ResultsStore() as b:
            a.pin_digest("flip/final", "abc")
            b.pin_digest("flip/final", "abc")
            b.pin_digest("flip/initial", "xyz")
            stats = a.merge_from(b)
            assert (stats.digests_added, stats.digests_collapsed) == (1, 1)
            assert a.pinned_digests() == {"flip/final": "abc", "flip/initial": "xyz"}


class TestQueries:
    def test_metric_trajectory_ordering_and_filters(self):
        with ResultsStore() as store:
            store.record_run("bench", {"v": 1.0}, timestamp="t1", mode="full")
            store.record_run("bench", {"v": 9.0}, timestamp="t2", mode="smoke")
            store.record_run(
                "bench", {"v": 3.0}, timestamp="t0", mode="full", kind="trajectory"
            )
            all_values = [v for _, v in store.metric_trajectory("bench", "v")]
            assert all_values == [3.0, 1.0, 9.0]  # timestamp order, not insert order
            full_entries = [
                v
                for _, v in store.metric_trajectory(
                    "bench", "v", mode="full", kind="entry"
                )
            ]
            assert full_entries == [1.0]

    def test_run_metrics_view_joins(self):
        with ResultsStore() as store:
            store.record_run("bench", {"speedup": 1.5}, timestamp="t0", mode="full")
            rows = store.query(
                "SELECT benchmark, metric, value FROM run_metrics_view "
                "WHERE metric = 'speedup'"
            )
            assert len(rows) == 1
            assert rows[0]["benchmark"] == "bench"
            assert float(rows[0]["value"]) == 1.5

    def test_set_annotations(self):
        with ResultsStore() as store:
            run_id = store.record_run("bench", {"v": 1.0}, timestamp="t0")
            store.set_annotations(run_id, label="PR 9", lever="magic")
            record = store.get_run(run_id)
            assert (record.label, record.lever) == ("PR 9", "magic")
            with pytest.raises(KeyError):
                store.set_annotations(999, label="nope")
