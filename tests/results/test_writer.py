"""ResultsWriter tests: one front door, two synchronized surfaces.

Every write must land twice — as queryable store rows and as the merged
JSON export — with the legacy merge semantics (other entries preserved)
intact.
"""

from __future__ import annotations

import json

import pytest

from repro.eval.continual import MethodRunResult
from repro.results import (
    ResultsStore,
    ResultsWriter,
    current_git_sha,
    current_host,
    method_table,
    record_method_results,
)


class TestWriterSurfaces:
    def test_record_entry_updates_both_surfaces(self, tmp_path):
        json_path = tmp_path / "report.json"
        with ResultsWriter(json_path, host="h", git_sha="sha") as writer:
            writer.record_entry("qat", {"speedup": 1.5, "config": {"bits": 4}})
            store_path = writer.store_path
        assert json.loads(json_path.read_text()) == {
            "qat": {"speedup": 1.5, "config": {"bits": 4}}
        }
        with ResultsStore(store_path) as store:
            runs = store.runs("qat", kind="entry")
            assert len(runs) == 1
            assert (runs[0].host, runs[0].git_sha) == ("h", "sha")
            assert store.run_metrics(runs[0].run_id) == {"speedup": 1.5}
            assert store.run_config(runs[0].run_id) == {"bits": 4}

    def test_store_path_defaults_next_to_json(self, tmp_path):
        writer = ResultsWriter(tmp_path / "smoke.json")
        try:
            assert writer.store_path == tmp_path / "smoke.sqlite"
        finally:
            writer.close()

    def test_json_merge_preserves_other_entries(self, tmp_path):
        json_path = tmp_path / "report.json"
        json_path.write_text(json.dumps({"other": {"speedup": 2.0}, "mode": "full"}))
        with ResultsWriter(json_path, host="h", git_sha="sha") as writer:
            writer.record_entry("qat", {"speedup": 1.5})
        merged = json.loads(json_path.read_text())
        assert merged["other"] == {"speedup": 2.0}
        assert merged["mode"] == "full"
        assert merged["qat"] == {"speedup": 1.5}

    def test_record_report_round_trips(self, tmp_path):
        report = {
            "mode": "full",
            "config": {"seed": 0},
            "qat": {"speedup": 1.5},
            "conv": {"speedup": 1.4, "config": {"kernel": "strided"}},
        }
        json_path = tmp_path / "report.json"
        with ResultsWriter(json_path, host="h", git_sha="sha") as writer:
            writer.record_report(report)
        assert json.loads(json_path.read_text()) == report

    def test_mode_picked_up_from_payload(self, tmp_path):
        with ResultsWriter(tmp_path / "r.json", host="h", git_sha="sha") as writer:
            writer.record_entry("qat", {"speedup": 1.5, "mode": "smoke"})
            runs = writer.store.runs("qat")
            assert runs[0].mode == "smoke"

    def test_corrupt_json_export_recovers(self, tmp_path):
        json_path = tmp_path / "report.json"
        json_path.write_text("{broken")
        with ResultsWriter(json_path, host="h", git_sha="sha") as writer:
            with pytest.warns(UserWarning, match="not valid JSON"):
                writer.record_entry("qat", {"speedup": 1.5})
        assert json.loads(json_path.read_text()) == {"qat": {"speedup": 1.5}}
        assert json_path.with_suffix(".json.corrupt").read_text() == "{broken"

    def test_identity_helpers(self):
        assert isinstance(current_host(), str) and current_host()
        assert isinstance(current_git_sha(), str) and current_git_sha()


def _result(method, bits, accuracy, target="B", seed=0):
    return MethodRunResult(
        method=method,
        scenario=f"T: A → {target}",
        bits=bits,
        batch_accuracies=[accuracy, accuracy + 0.02],
        adapt_seconds=[0.1, 0.2],
        memory_bytes=1000,
        source="A",
        target=target,
        seed=seed,
    )


class TestMethodTables:
    def test_table_matches_in_memory_aggregation(self):
        from repro.eval import results_to_table

        results = [
            _result("QCore", 4, 0.80),
            _result("ER", 4, 0.70),
            _result("QCore", 8, 0.90),
            _result("ER", 8, 0.75),
        ]
        expected = results_to_table(results, title="t")
        with ResultsStore() as store:
            timestamp, run_ids = record_method_results(store, "table5", results)
            assert len(run_ids) == len(results)
            table = method_table(store, "table5", timestamp=timestamp, title="t")
        assert table.rows == expected.rows
        assert table.columns == expected.columns
        for row in expected.rows:
            for column in expected.columns:
                assert table.value(row, column) == expected.value(row, column)

    def test_repeated_cells_average_like_results_to_table(self):
        from repro.eval import results_to_table

        results = [
            _result("QCore", 4, 0.80, target="B"),
            _result("QCore", 4, 0.60, target="C"),
        ]
        expected = results_to_table(results)
        with ResultsStore() as store:
            timestamp, _ = record_method_results(store, "table5", results)
            table = method_table(store, "table5", timestamp=timestamp)
        assert table.value("QCore", "4-bit") == expected.value("QCore", "4-bit")

    def test_custom_column_key(self):
        results = [_result("QCore", 4, 0.80, "B"), _result("QCore", 4, 0.70, "C")]
        with ResultsStore() as store:
            timestamp, _ = record_method_results(store, "sweep", results)
            table = method_table(
                store, "sweep", column_key="target", timestamp=timestamp
            )
        assert table.columns == ["B", "C"]
        assert table.value("QCore", "B") == pytest.approx(0.81)

    def test_extra_config_becomes_queryable_lineage(self):
        with ResultsStore() as store:
            timestamp, _ = record_method_results(
                store, "table9", [_result("QCore", 4, 0.8)],
                extra_config={"dataset": "DSA"},
            )
            table = method_table(
                store, "table9", column_key="dataset", timestamp=timestamp,
                metric="average_adapt_seconds",
            )
            assert table.columns == ["DSA"]
            assert table.value("QCore", "DSA") == pytest.approx(0.15)

    def test_default_timestamp_is_latest_generation(self):
        with ResultsStore() as store:
            record_method_results(
                store, "table5", [_result("QCore", 4, 0.10)], timestamp="t0"
            )
            record_method_results(
                store, "table5", [_result("QCore", 4, 0.90)], timestamp="t1"
            )
            table = method_table(store, "table5")
            assert table.value("QCore", "4-bit") == pytest.approx(0.91)

    def test_no_method_runs_raises(self):
        with ResultsStore() as store:
            with pytest.raises(KeyError, match="no method runs"):
                method_table(store, "table5")
