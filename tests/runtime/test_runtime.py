"""Tests for the process-global compute-dtype configuration."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import nn, runtime


class TestDtypeState:
    def test_default_is_float32(self):
        assert runtime.DEFAULT_DTYPE == np.dtype(np.float32)

    def test_set_returns_previous(self):
        previous = runtime.set_dtype(np.float32)
        try:
            assert runtime.get_dtype() == np.dtype(np.float32)
        finally:
            runtime.set_dtype(previous)
        assert runtime.get_dtype() == previous

    def test_use_dtype_restores_on_exit(self):
        before = runtime.get_dtype()
        with runtime.use_dtype(np.float32) as active:
            assert active == np.dtype(np.float32)
            assert runtime.get_dtype() == np.dtype(np.float32)
        assert runtime.get_dtype() == before

    def test_use_dtype_restores_on_exception(self):
        before = runtime.get_dtype()
        with pytest.raises(RuntimeError):
            with runtime.use_dtype(np.float32):
                raise RuntimeError("boom")
        assert runtime.get_dtype() == before

    def test_nested_contexts(self):
        with runtime.use_dtype(np.float32):
            with runtime.use_dtype(np.float64):
                assert runtime.get_dtype() == np.dtype(np.float64)
            assert runtime.get_dtype() == np.dtype(np.float32)

    def test_string_names_accepted(self):
        with runtime.use_dtype("float32"):
            assert runtime.get_dtype() == np.dtype(np.float32)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            runtime.set_dtype(np.float16)
        with pytest.raises(ValueError):
            runtime.set_dtype(np.int32)

    def test_environment_override(self):
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, REPRO_COMPUTE_DTYPE="float64", PYTHONPATH=str(src))
        out = subprocess.run(
            [sys.executable, "-c", "from repro import runtime; print(runtime.get_dtype())"],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "float64"


class TestArrayHelpers:
    def test_asarray_casts_to_active_dtype(self):
        with runtime.use_dtype(np.float32):
            cast = runtime.asarray(np.arange(4, dtype=np.float64))
            assert cast.dtype == np.float32

    def test_asarray_is_noop_for_matching_dtype(self):
        with runtime.use_dtype(np.float32):
            values = np.ones(3, dtype=np.float32)
            assert runtime.asarray(values) is values

    def test_zeros_and_ones_follow_active_dtype(self):
        with runtime.use_dtype(np.float32):
            assert runtime.zeros((2, 2)).dtype == np.float32
            assert runtime.ones(3).dtype == np.float32


class TestSubstrateFollowsDtype:
    def test_parameter_created_at_active_dtype(self):
        with runtime.use_dtype(np.float32):
            param = nn.Parameter(np.ones(4))
            assert param.data.dtype == np.float32
            assert param.grad.dtype == np.float32

    def test_forward_pass_stays_in_float32(self, rng):
        with runtime.use_dtype(np.float32):
            model = nn.Sequential(nn.Dense(6, 8, rng=rng), nn.ReLU(), nn.Dense(8, 3, rng=rng))
            out = model.forward(rng.normal(size=(5, 6)))
            assert out.dtype == np.float32

    def test_conv_backward_stays_in_float32(self, rng):
        with runtime.use_dtype(np.float32):
            layer = nn.Conv1d(3, 4, kernel_size=3, rng=rng)
            out = layer.forward(rng.normal(size=(2, 3, 12)))
            grad_in = layer.backward(np.ones_like(out))
            assert grad_in.dtype == np.float32
            assert layer.weight.grad.dtype == np.float32

    def test_float32_and_float64_models_agree_loosely(self, rng):
        x = rng.normal(size=(4, 5))
        with runtime.use_dtype(np.float64):
            model64 = nn.Sequential(nn.Dense(5, 7, rng=np.random.default_rng(7)), nn.ReLU(),
                                    nn.Dense(7, 2, rng=np.random.default_rng(8)))
            out64 = model64.forward(x)
        with runtime.use_dtype(np.float32):
            model32 = nn.Sequential(nn.Dense(5, 7, rng=np.random.default_rng(7)), nn.ReLU(),
                                    nn.Dense(7, 2, rng=np.random.default_rng(8)))
            out32 = model32.forward(x)
        np.testing.assert_allclose(out32, out64, atol=1e-5)
