"""Tests for the shared utilities (seeding, timing, validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    Timer,
    ensure_fraction,
    ensure_positive_int,
    ensure_probability_vector,
    seeded_rng,
    spawn_rngs,
)


class TestSeeding:
    def test_seeded_rng_is_deterministic(self):
        a = seeded_rng(7).normal(size=5)
        b = seeded_rng(7).normal(size=5)
        np.testing.assert_allclose(a, b)

    def test_seeded_rng_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            seeded_rng(-1)

    def test_spawn_rngs_are_independent_but_reproducible(self):
        first = [rng.normal() for rng in spawn_rngs(3, 4)]
        second = [rng.normal() for rng in spawn_rngs(3, 4)]
        np.testing.assert_allclose(first, second)
        assert len(set(np.round(first, 12))) == 4

    def test_spawn_rngs_rejects_bad_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            sum(range(10000))
        assert timer.elapsed >= 0.0


class TestValidation:
    def test_ensure_positive_int(self):
        assert ensure_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            ensure_positive_int(0, "x")
        with pytest.raises(ValueError):
            ensure_positive_int(1.5, "x")
        with pytest.raises(ValueError):
            ensure_positive_int(True, "x")

    def test_ensure_fraction(self):
        assert ensure_fraction(0.5, "f") == 0.5
        assert ensure_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            ensure_fraction(0.0, "f")
        with pytest.raises(ValueError):
            ensure_fraction(1.5, "f")

    def test_ensure_probability_vector(self):
        probs = ensure_probability_vector(np.array([1.0, 3.0]), "p")
        np.testing.assert_allclose(probs, [0.25, 0.75])
        with pytest.raises(ValueError):
            ensure_probability_vector(np.array([-1.0, 2.0]), "p")
        with pytest.raises(ValueError):
            ensure_probability_vector(np.array([0.0, 0.0]), "p")
        with pytest.raises(ValueError):
            ensure_probability_vector(np.zeros((2, 2)), "p")
