"""Repo tooling: the invariant linter (``tools.lint``) and CI gate scripts."""
