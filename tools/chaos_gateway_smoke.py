"""CI gateway chaos smoke: kill -9 the store daemon + stall a device, for real.

The gateway tentpole makes two hard promises that unit tests can only
simulate: a **writer crash** loses no acknowledged state (the fsynced command
journal replays on restart), and a **stalled device** is absorbed — requeued
once, then quarantined — without perturbing any other device's calibration by
a single bit.  This smoke performs both against real processes:

1. Golden: four calibration waves through the plain
   :class:`~repro.fleet.calibrator.FleetCalibrator` — no gateway, no store.
2. A store daemon is spawned with a planted ``writer_crash`` fault that
   ``os._exit(13)``'s on the first ``mark_done`` of round two — *after* the
   command hit the journal, *before* it hit the store.  Waves one and two run
   through a :class:`FleetGateway` over a :class:`StoreClient`; the daemon
   dies mid-round-two and the client surfaces ``StoreError``.
3. A fresh daemon replays the journal (the smoke asserts the journaled
   ``mark_done`` is now applied), and ``FleetService.resume`` completes round
   two bit-identically.
4. A fresh gateway runs wave three, during which one device goes silent after
   delivering its report: its lease expires, the report is requeued exactly
   once, then the device is quarantined through the store.  Wave four runs
   with the survivors; the quarantined device's late report is rejected.
5. Every surviving device's integer-code digest must equal the golden run's.

Usage::

    PYTHONPATH=src python tools/chaos_gateway_smoke.py

Exits non-zero with a diagnostic on any mismatch; prints a one-line summary
on success.  Run time is a few seconds — it is wired into CI next to the
crash-recovery smoke.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import runtime
from repro.core.pipeline import QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.data.dataset import Dataset
from repro.fleet import (
    Fleet,
    FleetCalibrator,
    FleetService,
    RetryPolicy,
    StoreClient,
    StoreError,
    spawn_store_daemon,
)
from repro.fleet.gateway import (
    BackpressurePolicy,
    DeviceReport,
    FleetGateway,
    GatewayConfig,
    ManualClock,
    Rejected,
)

CRASH_EXIT_CODE = 13
DEVICES = 3
WAVES = 4
STALLED = "device-1"
SEED = 0
LEASE_S = 5.0
RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _flatten(dataset: Dataset) -> Dataset:
    return Dataset(
        dataset.features.reshape(len(dataset), -1),
        dataset.labels,
        dataset.num_classes,
        name=dataset.name,
    )


def _build_fleet():
    """Deterministic tiny fleet — identical every time it is built."""
    ts = SyntheticTimeSeriesConfig(
        num_classes=3, num_domains=2, channels=3, length=12,
        train_per_class=8, val_per_class=1, test_per_class=3,
    )
    data = make_dsa_surrogate(seed=SEED, config=ts)
    source = _flatten(data[data.domain_names[0]].train)
    target = _flatten(data[data.domain_names[1]].train)
    from repro.models.mlp import MLPClassifier

    model = MLPClassifier(
        source.features.shape[1], ts.num_classes,
        hidden=(16,), rng=np.random.default_rng(SEED),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=16, train_epochs=2, calibration_epochs=3,
        edge_calibration_epochs=2, seed=SEED,
    )
    framework.fit(model, source)
    deployment = framework.deploy(bits=4)
    deployment.calibrator.batchnorm_refresh_passes = 1
    fleet = Fleet.replicate(deployment, DEVICES, seed=SEED)
    return fleet, target


def _wave_pools(target: Dataset, device_ids, wave: int):
    """Distinct pool per device per wave (every device its own dedupe group)."""
    return {
        device_id: target.subset(
            np.arange(wave * 11 + k * 5, wave * 11 + k * 5 + 8) % len(target)
        )
        for k, device_id in enumerate(device_ids)
    }


def _gateway(fleet: Fleet, client: StoreClient, clock: ManualClock) -> FleetGateway:
    config = GatewayConfig(lease_s=LEASE_S, queue_max=16, max_batch=DEVICES)
    return FleetGateway(
        fleet,
        store=client,
        retry_policy=RETRY,
        config=config,
        policy=BackpressurePolicy(queue_max=16, defer_watermark=1.0),
        clock=clock,
    )


def _offer_wave(gateway: FleetGateway, target: Dataset, wave: int, device_ids):
    pools = _wave_pools(target, gateway.fleet.ids, wave)
    for device_id in device_ids:
        admission = gateway.offer(
            DeviceReport(device_id=device_id, seq=wave, pool=pools[device_id])
        )
        if isinstance(admission, Rejected):
            raise AssertionError(
                f"wave {wave}: {device_id} unexpectedly rejected: {admission.reason}"
            )


def run_smoke(workdir: Path) -> int:
    store_path = workdir / "fleet_state.sqlite"
    socket_path = workdir / "store.sock"
    journal_path = workdir / "journal.bin"

    with runtime.use_dtype(np.float64):
        # ---------------------------------------------------------- golden
        fleet, target = _build_fleet()
        golden = Fleet({device_id: dep.clone() for device_id, dep in fleet.items()})
        calibrator = FleetCalibrator()
        for wave in range(WAVES):
            calibrator.calibrate(golden, _wave_pools(target, golden.ids, wave))
        golden_digests = golden.codes_digests()

        # ------------------------------------------- phase A: crash mid-wave-2
        # Rounds have DEVICES mark_done calls each, so the (DEVICES+1)-th
        # overall is the first of round two: journaled, then the lights go out.
        daemon = spawn_store_daemon(
            store_path, socket_path, journal_path,
            crash_after=f"mark_done:{DEVICES + 1}",
        )
        client = StoreClient(socket_path)
        fleet_a, _ = _build_fleet()
        clock = ManualClock()
        gateway = _gateway(fleet_a, client, clock)
        _offer_wave(gateway, target, 0, fleet_a.ids)
        gateway.pump()
        crashed = False
        try:
            _offer_wave(gateway, target, 1, fleet_a.ids)
            gateway.pump()
        except StoreError:
            crashed = True
        daemon.wait(timeout=60)
        client.close()
        if not crashed:
            print("daemon crash never surfaced as StoreError — nothing was proven")
            return 1
        if daemon.returncode != CRASH_EXIT_CODE:
            print("daemon did not die with the injected crash exit code "
                  f"({daemon.returncode} != {CRASH_EXIT_CODE})")
            return 1

        # --------------------------------- phase B: replay journal and resume
        daemon = spawn_store_daemon(store_path, socket_path, journal_path)
        try:
            client = StoreClient(socket_path)
            round_two = client.unfinished_rounds()
            if len(round_two) != 1:
                print(f"expected exactly one interrupted round, found {round_two}")
                return 1
            statuses = {r.device_id: r.status for r in client.device_rounds(round_two[0])}
            if "done" not in statuses.values():
                print("journal replay failed: the journaled mark_done was not "
                      f"applied on restart (statuses: {statuses})")
                return 1
            fleet_b, _ = _build_fleet()
            service = FleetService(fleet_b, store=client, retry_policy=RETRY)
            outcomes = service.resume(_wave_pools(target, fleet_b.ids, 1))
            if sum(o.resumed_devices for o in outcomes) == 0:
                print("resume touched no interrupted devices — nothing recovered")
                return 1

            # ------------------------- phase C: stall a device mid-stream
            clock = ManualClock(start=100.0)
            gateway = _gateway(fleet_b, client, clock)
            # Wave 3 delivered by everyone — then STALLED goes silent.
            _offer_wave(gateway, target, 2, fleet_b.ids)
            clock.advance(LEASE_S + 1.0)
            for device_id in fleet_b.ids:
                if device_id != STALLED:
                    gateway.heartbeat(device_id)
            gateway.pump()
            if gateway.stats.requeued != 1:
                print(f"expected the stalled report requeued exactly once, "
                      f"got {gateway.stats.requeued}")
                return 1
            quarantined = client.quarantined_devices()
            if STALLED not in quarantined:
                print(f"stalled device not quarantined through the store "
                      f"(quarantined: {sorted(quarantined)})")
                return 1
            # Wave 4: survivors only; the dead device's late report bounces.
            survivors = [d for d in fleet_b.ids if d != STALLED]
            _offer_wave(gateway, target, 3, survivors)
            late = gateway.offer(DeviceReport(
                device_id=STALLED, seq=3,
                pool=_wave_pools(target, fleet_b.ids, 3)[STALLED],
            ))
            if not isinstance(late, Rejected):
                print(f"quarantined device's report was not rejected: {late}")
                return 1
            for device_id in survivors:
                gateway.heartbeat(device_id)
            gateway.pump()
            recovered_digests = fleet_b.codes_digests()
        finally:
            shutdown = StoreClient(socket_path)
            shutdown.shutdown_daemon()
            shutdown.close()
            daemon.wait(timeout=60)

    diverged = sorted(
        device_id for device_id in golden_digests
        if device_id != STALLED
        and recovered_digests.get(device_id) != golden_digests[device_id]
    )
    if diverged:
        print("gateway chaos FAILED: surviving devices diverged from the "
              f"fault-free golden run: {diverged}")
        return 1

    print(
        f"gateway chaos smoke ok: daemon killed mid-round (exit {CRASH_EXIT_CODE}), "
        f"journal replayed + round resumed, {STALLED!r} stalled -> requeued once -> "
        f"quarantined, all {len(golden_digests) - 1} survivors bit-identical to the "
        "golden run at float64"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default=None,
                        help="directory for the store/socket/journal (default: temp)")
    args = parser.parse_args()
    if args.workdir:
        return run_smoke(Path(args.workdir))
    with tempfile.TemporaryDirectory() as tmp:
        return run_smoke(Path(tmp))


if __name__ == "__main__":
    raise SystemExit(main())
