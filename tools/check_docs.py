"""Documentation gate for CI.

Two checks, both of which fail the build:

1. **Intra-repo links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file (or directory) that exists in the
   repository.  External links (``http(s)://``, ``mailto:``) and pure
   in-page anchors (``#section``) are skipped; ``path#anchor`` links are
   checked for the path part.

2. **Public-surface docstrings** — every public function, class and public
   method defined in the :mod:`repro.nn.kernels` and :mod:`repro.fleet`
   packages must carry a docstring.  The kernel layer is the repo's
   pluggable-backend surface and the fleet package is its operational
   (service/store/faults) surface; an undocumented public hook in either
   is an API regression.

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# Matches [text](target) while ignoring images' leading "!" (still a link
# target worth checking) and skipping targets with a URL scheme.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown_files():
    """README.md plus every markdown file under docs/."""
    yield REPO_ROOT / "README.md"
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_links() -> list:
    """Return a list of broken-link error strings across the doc set."""
    errors = []
    for md_file in iter_markdown_files():
        if not md_file.exists():
            errors.append(f"{md_file.relative_to(REPO_ROOT)}: file missing")
            continue
        text = md_file.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if _SCHEME_RE.match(target) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md_file.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return errors


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def check_package_docstrings(package_name: str) -> list:
    """Return error strings for undocumented public API in ``package_name``."""
    package = importlib.import_module(package_name)
    prefix = package_name.split(".")

    errors = []
    modules = [package]
    for info in pkgutil.iter_modules(package.__path__):
        modules.append(importlib.import_module(f"{package_name}.{info.name}"))

    seen = set()
    for module in modules:
        for name, obj in vars(module).items():
            if not _is_public(name):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", "").split(".")[: len(prefix)] != prefix:
                continue  # re-exported from elsewhere (e.g. numpy)
            qualname = f"{obj.__module__}.{obj.__qualname__}"
            if qualname in seen:
                continue
            seen.add(qualname)
            if not inspect.getdoc(obj):
                errors.append(f"missing docstring: {qualname}")
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if not _is_public(meth_name):
                        continue
                    if not (inspect.isfunction(meth) or isinstance(meth, (classmethod, staticmethod))):
                        continue
                    func = meth.__func__ if isinstance(meth, (classmethod, staticmethod)) else meth
                    if not inspect.getdoc(func):
                        errors.append(f"missing docstring: {qualname}.{meth_name}")
    return errors


#: Packages whose public surface must stay documented.
DOCUMENTED_PACKAGES = ("repro.nn.kernels", "repro.fleet")


def main() -> int:
    """Run both checks; print findings and exit non-zero on any failure."""
    errors = check_links()
    for package_name in DOCUMENTED_PACKAGES:
        errors += check_package_docstrings(package_name)
    if errors:
        print(f"docs check FAILED ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    files = [str(p.relative_to(REPO_ROOT)) for p in iter_markdown_files()]
    print(f"docs check ok: links valid in {', '.join(files)}; "
          f"public API fully documented in {', '.join(DOCUMENTED_PACKAGES)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
