"""Documentation gate for CI — thin shim over :mod:`tools.lint`.

Historically this script carried its own link-checking and
import/inspect-based docstring walker.  Both checks now live in the
repo-native linter as the ``doc-links`` and ``docstring-coverage`` rules
(:mod:`tools.lint.rules.docs`), where they share the suppression syntax,
file walking, and fixture-backed selfcheck with every other rule.  This
entry point survives so existing CI configuration and muscle memory
(``python tools/check_docs.py``) keep working; it simply runs those two
rules and reports in the old format.

Usage::

    python tools/check_docs.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.lint import config  # noqa: E402
from tools.lint.engine import PROJECT_RULES, lint_file  # noqa: E402


def main() -> int:
    """Run the doc-links and docstring-coverage rules; non-zero on findings."""
    findings = list(PROJECT_RULES["doc-links"].check_project(config.REPO_ROOT))
    for path in sorted(config.REPO_ROOT.rglob("*.py")):
        rel = path.relative_to(config.REPO_ROOT).as_posix()
        if config.is_excluded(rel):
            continue
        if not rel.startswith(config.DOCSTRING_PATH_PREFIXES):
            continue
        findings.extend(
            f for f in lint_file(path, rel_path=rel) if f.rule == "docstring-coverage"
        )
    if findings:
        print(f"docs check FAILED ({len(findings)} problem(s)):")
        for finding in findings:
            print(f"  - {finding.format()}")
        return 1
    files = [str(p.relative_to(REPO_ROOT)) for p in config.markdown_files()]
    surfaces = ", ".join(config.DOCSTRING_PATH_PREFIXES)
    print(f"docs check ok: links valid in {', '.join(files)}; "
          f"public API fully documented under {surfaces}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
