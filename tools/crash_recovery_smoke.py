"""CI crash-recovery smoke: kill the service mid-round, resume, match golden.

The durability contract of :class:`repro.fleet.service.FleetService` is that a
process crash in the middle of a calibration round loses nothing: a fresh
process pointed at the same store resumes the interrupted round and produces
flip decisions **bit-identical at float64** to an uninterrupted run.  Unit
tests simulate the crash; this smoke performs it for real:

1. The parent computes the golden answer: two calibration rounds through the
   plain :class:`~repro.fleet.calibrator.FleetCalibrator`, no service, no
   store.
2. It then spawns a child process running the same two rounds through a
   ``FleetService`` backed by a file store, with a fault plan that hard-kills
   the process (``os._exit``) in the middle of round two — after round one
   has durably completed.
3. The parent verifies the child died with the injected exit code, builds a
   *fresh* fleet and service over the same store file, resumes, and asserts
   every device's integer-code digest equals the golden run's.

Usage::

    PYTHONPATH=src python tools/crash_recovery_smoke.py

Exits non-zero (with a diagnostic) on any mismatch; prints a one-line summary
on success.  Run time is a few seconds — it is wired into CI next to the
tier-1 tests.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import runtime
from repro.core.pipeline import QCoreFramework
from repro.data import SyntheticTimeSeriesConfig, make_dsa_surrogate
from repro.data.dataset import Dataset
from repro.fleet import (
    FaultPlan,
    FaultSpec,
    Fleet,
    FleetCalibrator,
    FleetService,
)
from repro.fleet.store import DeviceStateStore
from repro.models.mlp import MLPClassifier

CRASH_EXIT_CODE = 13
DEVICES = 3
ROUNDS = 2
SEED = 0


def _flatten(dataset: Dataset) -> Dataset:
    return Dataset(
        dataset.features.reshape(len(dataset), -1),
        dataset.labels,
        dataset.num_classes,
        name=dataset.name,
    )


def _build_fleet():
    """Deterministic tiny fleet — identical in the parent and the child."""
    ts = SyntheticTimeSeriesConfig(
        num_classes=3, num_domains=2, channels=3, length=12,
        train_per_class=8, val_per_class=1, test_per_class=3,
    )
    data = make_dsa_surrogate(seed=SEED, config=ts)
    source = _flatten(data[data.domain_names[0]].train)
    target = _flatten(data[data.domain_names[1]].train)
    model = MLPClassifier(
        source.features.shape[1], ts.num_classes,
        hidden=(16,), rng=np.random.default_rng(SEED),
    )
    framework = QCoreFramework(
        levels=(4,), qcore_size=16, train_epochs=2, calibration_epochs=3,
        edge_calibration_epochs=2, seed=SEED,
    )
    framework.fit(model, source)
    deployment = framework.deploy(bits=4)
    deployment.calibrator.batchnorm_refresh_passes = 1
    fleet = Fleet.replicate(deployment, DEVICES, seed=SEED)
    return fleet, target


def _round_pools(target: Dataset, device_ids, round_index: int):
    """Distinct pool per device (so every device is its own dedupe group)."""
    return {
        device_id: target.subset(
            np.arange(round_index * 11 + k * 5, round_index * 11 + k * 5 + 8)
            % len(target)
        )
        for k, device_id in enumerate(device_ids)
    }


def run_child(store_path: str) -> None:
    """Round one completes durably; round two hard-crashes the process."""
    with runtime.use_dtype(np.float64):
        fleet, target = _build_fleet()
        # Site labels are "round{id}:{rep}:a{attempt}", so this fires only in
        # round two, first attempt — round one runs clean and lands in the
        # store before the lights go out.
        plan = FaultPlan(
            [FaultSpec(kind="crash", hard=True, target="round2:device-1:a1")],
            seed=SEED,
        )
        service = FleetService(fleet, store=DeviceStateStore(store_path), fault_plan=plan)
        for round_index in range(ROUNDS):
            pools = _round_pools(target, fleet.ids, round_index)
            round_id = service.submit(pools)
            service.drain(round_id, pools)  # os._exit(13) fires mid-round-two
    raise SystemExit("fault plan never fired — the crash smoke proved nothing")


def run_parent(store_path: str) -> int:
    with runtime.use_dtype(np.float64):
        fleet, target = _build_fleet()
        golden = Fleet({device_id: dep.clone() for device_id, dep in fleet.items()})
        calibrator = FleetCalibrator()
        for round_index in range(ROUNDS):
            calibrator.calibrate(golden, _round_pools(target, golden.ids, round_index))
        golden_digests = golden.codes_digests()

    child = subprocess.run(
        [sys.executable, __file__, "--child", "--store", store_path],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=600,
    )
    if child.returncode != CRASH_EXIT_CODE:
        print("child did not die with the injected crash exit code "
              f"({child.returncode} != {CRASH_EXIT_CODE})")
        print(child.stdout)
        print(child.stderr, file=sys.stderr)
        return 1

    with runtime.use_dtype(np.float64):
        fleet, target = _build_fleet()
        with FleetService(fleet, store=DeviceStateStore(store_path)) as service:
            unfinished = service.store.unfinished_rounds()
            if len(unfinished) != 1:
                print(f"expected exactly one interrupted round, found {unfinished}")
                return 1
            pools = _round_pools(target, fleet.ids, ROUNDS - 1)
            outcomes = service.resume(pools)
        resumed = sum(outcome.resumed_devices for outcome in outcomes)
        if resumed == 0:
            print("resume touched no interrupted devices — nothing was recovered")
            return 1
        recovered_digests = fleet.codes_digests()

    if recovered_digests != golden_digests:
        diverged = sorted(
            device_id
            for device_id in golden_digests
            if recovered_digests.get(device_id) != golden_digests[device_id]
        )
        print("crash-recovery FAILED: resumed flip decisions diverged from the "
              f"uninterrupted golden run on devices {diverged}")
        return 1

    print(
        f"crash-recovery smoke ok: child killed mid-round (exit {CRASH_EXIT_CODE}), "
        f"round resumed from {store_path!r} with {resumed} interrupted device(s), "
        f"all {len(golden_digests)} devices bit-identical to the golden run at float64"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", action="store_true",
                        help="internal: run the crashing service process")
    parser.add_argument("--store", default=None,
                        help="store file (required in --child mode)")
    args = parser.parse_args()

    if args.child:
        if not args.store:
            parser.error("--child requires --store")
        run_child(args.store)
        return 1  # unreachable on a correct run: the crash fires first

    if args.store:
        return run_parent(args.store)
    with tempfile.TemporaryDirectory() as tmp:
        return run_parent(str(Path(tmp) / "fleet_state.sqlite"))


if __name__ == "__main__":
    raise SystemExit(main())
