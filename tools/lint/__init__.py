"""Repo-native invariant linter.

An AST-based static-analysis pass that turns the reproduction's prose
conventions — compute-dtype discipline, seeded-RNG determinism, the layer
DAG, pool picklability, store confinement — into machine-checked
invariants.  See ``docs/static_analysis.md`` for the rule catalog and the
suppression policy.

Usage::

    python -m tools.lint src/ benchmarks/ tools/   # lint (exit 1 on findings)
    python -m tools.lint --list-rules              # rule catalog
    python -m tools.lint --selfcheck               # verify the gate catches
                                                   # a seeded violation per rule

Programmatic entry points: :func:`tools.lint.engine.run_paths`,
:func:`tools.lint.engine.lint_file`.
"""

from tools.lint import rules as _rules  # noqa: F401  (registers the rule suite)
from tools.lint.engine import (  # noqa: F401
    Finding,
    PROJECT_RULES,
    RULES,
    all_rule_names,
    lint_file,
    run_paths,
)
