"""CLI front end: ``python -m tools.lint [paths…]``.

Exit status is 0 only when every linted file is clean; findings print one
per line as ``path:line:col: [rule] message`` so editors and CI logs can
jump straight to the site.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.lint import PROJECT_RULES, RULES, run_paths
from tools.lint.config import REPO_ROOT
from tools.lint.selfcheck import run_selfcheck

DEFAULT_PATHS = ("src", "benchmarks", "tools")


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the requested mode, return the exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Repo-native invariant linter (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help="verify every rule catches its seeded fixture violation "
        "(the CI verify-the-gate step)",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip project-wide rules (doc links) — useful when linting "
        "a single file",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted({**RULES, **PROJECT_RULES}.items()):
            print(f"{name:22s} {rule.description}")
        return 0
    if args.selfcheck:
        return run_selfcheck()

    paths = [Path(p) if Path(p).is_absolute() else REPO_ROOT / p for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(str(p) for p in missing)}")
        return 2
    findings, num_files = run_paths(paths, with_project_rules=not args.no_project)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s) across {num_files} file(s)")
        return 1
    print(
        f"repro-lint: clean — {num_files} file(s), "
        f"{len(RULES) + len(PROJECT_RULES)} rule(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
