"""Configuration of the repo-native invariant linter.

Everything a rule needs to know about *this* repository lives here — the
layer DAG, the per-file allowlists, the names of the pool-submission entry
points — so the rule implementations in :mod:`tools.lint.rules` stay pure
AST mechanics and a policy change is a one-file diff.

The layer DAG below is the machine-readable source of truth for the
``import-layering`` rule.  ``docs/architecture.md`` embeds the same DAG in a
fenced ``layers`` block and ``tests/lint/test_layering.py`` asserts the two
stay identical, so the prose architecture page can never drift from what CI
enforces.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

#: Repository root (the directory holding ``src/``, ``tools/``, ``docs/``).
REPO_ROOT = Path(__file__).resolve().parent.parent.parent

# --------------------------------------------------------------------------
# Layer DAG (import-layering rule)
# --------------------------------------------------------------------------

#: Packages grouped into layers, lowest first.  A package may import from
#: strictly lower layers only; same-layer and upward imports are findings.
#: Sub-packages not named here inherit their parent's layer, except
#: ``repro.nn.kernels`` which is deliberately *below* ``repro.nn`` (the
#: compute backends must never reach back into the layer API),
#: ``repro.data.scenarios`` which is deliberately *above* ``repro.data``
#: (the drift zoo composes datasets into streams; the data primitives never
#: import the zoo back), and ``repro.fleet.gateway`` which is deliberately
#: *above* ``repro.fleet`` (the ingestion front end orchestrates the
#: service/store tier; nothing in the tier may reach up into the gateway).
LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("repro.utils",),
    ("repro.runtime",),
    ("repro.data",),
    ("repro.data.scenarios",),
    ("repro.nn.kernels",),
    ("repro.nn",),
    ("repro.models", "repro.quantization"),
    ("repro.baselines", "repro.core"),
    ("repro.coresets",),
    ("repro.eval",),
    ("repro.results",),
    ("repro.fleet",),
    ("repro.fleet.gateway",),
)

#: Module-to-module import edges exempted from the DAG, with the reason the
#: exemption exists.  Keep this list painfully short: every entry is a
#: documented circularity-breaker, not a convenience.
LAYERING_EXEMPTIONS: Mapping[Tuple[str, str], str] = {
    # runtime exposes get/set/use_conv_kernel as the single configuration
    # front door; the registry lives in repro.nn.kernels, so runtime defers
    # the import to inside the wrapper functions (repro.nn.kernels itself
    # imports runtime for dtype access).
    ("repro.runtime", "repro.nn.kernels"): "deferred conv-kernel knob front door",
    ("repro.runtime", "repro.nn"): "deferred conv-kernel knob front door",
}


def layer_rank(package: str) -> Optional[int]:
    """Rank of ``package`` in :data:`LAYERS` (0 = lowest); None if unknown."""
    for rank, group in enumerate(LAYERS):
        if package in group:
            return rank
    return None


def package_of(module: str) -> Optional[str]:
    """Map a dotted ``repro.*`` module name onto its layer package.

    ``repro.nn.kernels.strided`` → ``repro.nn.kernels``;
    ``repro.eval.parallel`` → ``repro.eval``; ``repro.runtime`` →
    ``repro.runtime``.  Returns ``None`` for non-``repro`` modules.
    """
    if module != "repro" and not module.startswith("repro."):
        return None
    parts = module.split(".")
    if len(parts) >= 3 and parts[1] == "nn" and parts[2] == "kernels":
        return "repro.nn.kernels"
    if len(parts) >= 3 and parts[1] == "data" and parts[2] == "scenarios":
        return "repro.data.scenarios"
    if len(parts) >= 3 and parts[1] == "fleet" and parts[2] == "gateway":
        return "repro.fleet.gateway"
    if len(parts) >= 2:
        return ".".join(parts[:2])
    return "repro"


def module_name_for(rel_path: str) -> Optional[str]:
    """Dotted module name of a repo-relative path under ``src/``; else None."""
    if not rel_path.startswith("src/") or not rel_path.endswith(".py"):
        return None
    dotted = rel_path[len("src/") : -len(".py")].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


# --------------------------------------------------------------------------
# dtype-discipline rule
# --------------------------------------------------------------------------

#: Files where hard-coded float dtype literals are policy, with the reason.
#: ``repro.runtime`` is the one place allowed to *define* the compute dtypes;
#: the other entries are dtype-independence sites: arithmetic that must give
#: the same answer at any compute dtype because its outputs (split
#: boundaries, reported statistics) are pinned by the golden fixtures.
DTYPE_ALLOWLIST_FILES: Mapping[str, str] = {
    "src/repro/runtime.py": "defines the supported compute dtypes",
    "src/repro/utils/validation.py": (
        "probability/statistics validation runs in float64 regardless of the "
        "compute dtype so validation outcomes never depend on it"
    ),
    "src/repro/eval/metrics.py": (
        "paper-table accuracy statistics accumulate in float64 regardless of "
        "the compute dtype (golden-pinned values)"
    ),
}

#: Callees whose *arguments* may legitimately be ``np.float64``/``np.float32``:
#: these are the runtime's dtype-selection front doors (plus ``np.dtype``
#: normalisation), not hard-coded array dtypes.
DTYPE_SINK_CALLEES: FrozenSet[str] = frozenset(
    {"use_dtype", "set_dtype", "resolve_dtype", "dtype"}
)

#: The float dtype literals the rule polices.  Integer dtypes are exempt by
#: design: codes are always int64 and that is part of the storage contract.
DTYPE_LITERAL_NAMES: FrozenSet[str] = frozenset({"float64", "float32", "float16"})


# --------------------------------------------------------------------------
# rng-discipline rule
# --------------------------------------------------------------------------

#: ``np.random.<fn>`` functions that mutate or read numpy's *global* RNG
#: state.  Any call to one of these is a finding anywhere in the repo —
#: global-state randomness breaks run-to-run and worker-to-worker
#: determinism no matter where it happens.
NP_RANDOM_LEGACY: FrozenSet[str] = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "normal",
        "uniform", "standard_normal", "binomial", "poisson", "beta",
        "gamma", "exponential", "get_state", "set_state", "RandomState",
    }
)

#: Path prefixes considered *library* code, where the stricter rng sub-rules
#: apply (hidden literal seeds, OS-entropy generators, wall-clock reads).
#: Benchmarks and tools are deliberate fixed-seed experiment drivers, so a
#: literal seed there is an explicit choice, not a hidden default.
LIBRARY_PATH_PREFIXES: Tuple[str, ...] = ("src/",)


# --------------------------------------------------------------------------
# pool-picklability rule
# --------------------------------------------------------------------------

#: Method names treated as pool submission sites.  ``fn`` arguments reaching
#: these must be module-level callables (workers unpickle them by reference).
POOL_SUBMIT_METHODS: FrozenSet[str] = frozenset({"map", "map_outcomes"})

#: Constructors whose arguments (payload included) travel to worker
#: processes by pickling.
POOL_CONSTRUCTORS: FrozenSet[str] = frozenset({"WorkerPool"})

#: Keyword arguments at submission sites that stay in the *parent* process
#: (labelling hooks used for error messages) and therefore never pickle.
POOL_PARENT_SIDE_KEYWORDS: FrozenSet[str] = frozenset({"describe"})


# --------------------------------------------------------------------------
# store-discipline rule
# --------------------------------------------------------------------------

#: The only files allowed to open SQLite connections.  Everything else goes
#: through :class:`repro.fleet.store.DeviceStateStore` (device state) or
#: :class:`repro.results.store.ResultsStore` (experiment results) so
#: WAL/pragma/retry policy has exactly two audited implementations.
STORE_ALLOWED_FILES: FrozenSet[str] = frozenset(
    {"src/repro/fleet/store.py", "src/repro/results/store.py"}
)


# --------------------------------------------------------------------------
# bounded-queue rule
# --------------------------------------------------------------------------

#: ``queue``-module constructors that take ``maxsize`` as the first argument.
#: In library code (:data:`LIBRARY_PATH_PREFIXES`) every construction must
#: pass an explicit positive bound — an unbounded in-process buffer hides
#: overload until memory does the load shedding.
QUEUE_MAXSIZE_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "JoinableQueue"}
)

#: Constructors with *no* capacity parameter at all; always a finding in
#: library code (use a bounded ``Queue`` instead).
QUEUE_UNBOUNDABLE_CONSTRUCTORS: FrozenSet[str] = frozenset({"SimpleQueue"})


# --------------------------------------------------------------------------
# docstring-coverage rule
# --------------------------------------------------------------------------

#: Path prefixes whose *public* functions, classes and methods must carry
#: docstrings: the pluggable conv-backend surface, the operational fleet
#: surface, the experiment-store API, and the linter itself (dogfood).
DOCSTRING_PATH_PREFIXES: Tuple[str, ...] = (
    "src/repro/nn/kernels/",
    "src/repro/fleet/",
    "src/repro/results/",
    "tools/lint/",
)


# --------------------------------------------------------------------------
# doc-links rule
# --------------------------------------------------------------------------

def markdown_files() -> Tuple[Path, ...]:
    """``README.md`` plus every markdown file under ``docs/``, in repo order."""
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return tuple(files)


# --------------------------------------------------------------------------
# File walking
# --------------------------------------------------------------------------

#: Directory basenames never descended into.
EXCLUDE_DIR_NAMES: FrozenSet[str] = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})

#: Repo-relative path prefixes skipped entirely — the linter's own fixture
#: corpus contains deliberate violations.
EXCLUDE_PATH_PREFIXES: Tuple[str, ...] = ("tools/lint/fixtures/",)


def is_excluded(rel_path: str) -> bool:
    """Whether a repo-relative posix path is outside the linted universe."""
    if any(rel_path.startswith(prefix) for prefix in EXCLUDE_PATH_PREFIXES):
        return True
    return any(part in EXCLUDE_DIR_NAMES for part in rel_path.split("/"))


#: Layer assignment as an explicit edge map, derived from :data:`LAYERS` —
#: package → every package it is allowed to import from.  Exposed for the
#: docs test and for ``--list-rules`` output.
def allowed_imports() -> Dict[str, FrozenSet[str]]:
    """Package → allowed-dependency set implied by :data:`LAYERS`."""
    result: Dict[str, FrozenSet[str]] = {}
    lower: list = []
    for group in LAYERS:
        frozen = frozenset(lower)
        for package in group:
            result[package] = frozen
        lower.extend(group)
    return result
