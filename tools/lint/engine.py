"""AST-based lint engine: rule registry, per-file dispatch, suppressions.

The engine is deliberately small.  A *rule* is an object with a ``name``
and a ``check(ctx)`` method returning :class:`Finding` objects; rules
register themselves with :func:`register` at import time (importing
:mod:`tools.lint.rules` pulls in the whole suite).  The engine parses each
file once, hands every applicable rule the same :class:`FileContext`
(source, AST, parent links, derived module name) and filters the combined
findings through the inline suppression table.

Suppression syntax
------------------
A finding on line *N* is suppressed by a comment **on that line**::

    codes = values.astype(np.float64)  # repro-lint: disable=dtype-discipline -- scale arithmetic is float64 by contract

The ``--`` separated reason is mandatory: a reasonless ``disable`` is itself
a finding (rule ``suppression-hygiene``), as is a ``disable`` naming an
unknown rule or one that suppresses nothing.  There is no file-level or
block-level disable — wide waivers belong in :mod:`tools.lint.config`
allowlists where they carry a reason and are reviewed as policy.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from tools.lint import config

#: Rule name reserved for engine-level findings about suppression comments.
SUPPRESSION_RULE = "suppression-hygiene"
#: Rule name reserved for files the engine cannot parse.
PARSE_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]*?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, addressable as ``path:line:col: [rule] message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render in the canonical ``file:line:col: [rule] message`` form."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """One parsed ``repro-lint: disable=`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.AST
    module: Optional[str]
    package: Optional[str]
    parents: Dict[int, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module node)."""
        return self.parents.get(id(node))

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """Base class for per-file AST rules.

    Subclasses set ``name``/``description`` and implement :meth:`check`;
    :meth:`applies` lets a rule scope itself to path prefixes from
    :mod:`tools.lint.config` without the engine knowing the policy.
    """

    name: str = ""
    description: str = ""

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx``'s file (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-repository rules (run once per invocation)."""

    name: str = ""
    description: str = ""

    def check_project(self, root: Path) -> Iterable[Finding]:
        """Yield findings for the repository rooted at ``root``."""
        raise NotImplementedError


#: name → rule instance, populated by :func:`register`.
RULES: Dict[str, Rule] = {}
#: name → project-rule instance, populated by :func:`register`.
PROJECT_RULES: Dict[str, ProjectRule] = {}


def register(rule_cls):
    """Class decorator: instantiate and register a rule under its name."""
    instance = rule_cls()
    if not instance.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    registry = PROJECT_RULES if isinstance(instance, ProjectRule) else RULES
    if instance.name in registry:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    registry[instance.name] = instance
    return rule_cls


def all_rule_names() -> List[str]:
    """Every registered rule name plus the engine-reserved ones, sorted."""
    return sorted({*RULES, *PROJECT_RULES, SUPPRESSION_RULE, PARSE_RULE})


def parse_suppressions(source: str, rel_path: str) -> Tuple[List[Suppression], List[Finding]]:
    """Extract ``repro-lint: disable=`` comments via the token stream.

    Tokenising (rather than line-scanning) keeps ``#`` characters inside
    string literals from being misread as comments.  Malformed comments —
    missing reason, empty or unknown rule list — come back as
    :data:`SUPPRESSION_RULE` findings immediately.
    """
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return suppressions, findings  # the parse-error finding covers it
    known = set(all_rule_names())
    for token in tokens:
        if token.type != tokenize.COMMENT or "repro-lint" not in token.string:
            continue
        line = token.start[0]
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            findings.append(Finding(
                rel_path, line, token.start[1], SUPPRESSION_RULE,
                "malformed repro-lint comment; expected "
                "'# repro-lint: disable=<rule>[,<rule>] -- <reason>'",
            ))
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(",") if r.strip())
        reason = (match.group("reason") or "").strip()
        if not rules:
            findings.append(Finding(
                rel_path, line, token.start[1], SUPPRESSION_RULE,
                "suppression lists no rules",
            ))
            continue
        unknown = [r for r in rules if r not in known]
        if unknown:
            findings.append(Finding(
                rel_path, line, token.start[1], SUPPRESSION_RULE,
                f"suppression names unknown rule(s): {', '.join(unknown)}",
            ))
            continue
        if not reason:
            findings.append(Finding(
                rel_path, line, token.start[1], SUPPRESSION_RULE,
                f"suppression of {', '.join(rules)} carries no reason "
                "(append ' -- <why this site is exempt>')",
            ))
            continue
        suppressions.append(Suppression(line=line, rules=rules, reason=reason))
    return suppressions, findings


def _build_parents(tree: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def make_context(path: Path, rel_path: str, source: str) -> FileContext:
    """Parse ``source`` and assemble the :class:`FileContext` for rules."""
    tree = ast.parse(source, filename=rel_path)
    module = config.module_name_for(rel_path)
    package = config.package_of(module) if module else None
    ctx = FileContext(
        path=path, rel_path=rel_path, source=source, tree=tree,
        module=module, package=package,
    )
    ctx.parents = _build_parents(tree)
    return ctx


def lint_file(
    path: Path,
    rel_path: Optional[str] = None,
    rules: Optional[Mapping[str, Rule]] = None,
    source: Optional[str] = None,
) -> List[Finding]:
    """Lint one file; returns its findings after suppression filtering.

    ``rel_path`` overrides the repo-relative path used for module derivation
    and allowlist matching — the fixture corpus and its tests use this to
    lint a fixture *as if* it lived at a library path.
    """
    if rel_path is None:
        rel_path = path.resolve().relative_to(config.REPO_ROOT).as_posix()
    if source is None:
        source = path.read_text()
    active = RULES if rules is None else rules
    try:
        ctx = make_context(path, rel_path, source)
    except SyntaxError as error:
        return [Finding(rel_path, error.lineno or 1, error.offset or 0,
                        PARSE_RULE, f"cannot parse: {error.msg}")]
    raw: List[Finding] = []
    for rule in active.values():
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    suppressions, findings = parse_suppressions(source, rel_path)
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)
    for finding in raw:
        suppressed = False
        for suppression in by_line.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used = True
                suppressed = True
        if not suppressed:
            findings.append(finding)
    for suppression in suppressions:
        if not suppression.used:
            findings.append(Finding(
                rel_path, suppression.line, 0, SUPPRESSION_RULE,
                f"unused suppression of {', '.join(suppression.rules)} "
                "(nothing to suppress on this line — remove it)",
            ))
    return sorted(findings)


def iter_python_files(paths: Sequence[Path]) -> List[Tuple[Path, str]]:
    """Expand files/directories into (path, repo-relative posix path) pairs.

    Directories are walked recursively; excluded prefixes and directory
    names from :mod:`tools.lint.config` are skipped.  Ordering is
    deterministic (sorted by relative path).
    """
    seen: Set[str] = set()
    result: List[Tuple[Path, str]] = []
    for entry in paths:
        entry = entry.resolve()
        candidates = [entry] if entry.is_file() else sorted(entry.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            try:
                rel = candidate.relative_to(config.REPO_ROOT).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            if config.is_excluded(rel) or rel in seen:
                continue
            seen.add(rel)
            result.append((candidate, rel))
    return sorted(result, key=lambda pair: pair[1])


def run_paths(
    paths: Sequence[Path], with_project_rules: bool = True
) -> Tuple[List[Finding], int]:
    """Lint every python file under ``paths``; returns (findings, file count).

    Project-wide rules (doc links) run once per invocation unless disabled.
    """
    files = iter_python_files(paths)
    findings: List[Finding] = []
    for path, rel in files:
        findings.extend(lint_file(path, rel_path=rel))
    if with_project_rules:
        for rule in PROJECT_RULES.values():
            findings.extend(rule.check_project(config.REPO_ROOT))
    return sorted(findings), len(files)
