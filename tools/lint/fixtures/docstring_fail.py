# lint-fixture: path=src/repro/fleet/_fixture.py
# lint-fixture-expect: docstring-coverage
"""Seeded violation: undocumented public API on a documented surface."""


def work(item):
    return item


class Thing:
    def method(self):
        return 1
