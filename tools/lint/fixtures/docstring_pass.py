# lint-fixture: path=src/repro/fleet/_fixture.py
"""Clean sibling: every public hook documents itself."""


def work(item):
    """Return the item unchanged."""
    return item


class Thing:
    """A fully documented public class."""

    def method(self):
        """Return a constant."""
        return 1

    def _private(self):
        return 2
