# lint-fixture: path=src/repro/core/_fixture.py
# lint-fixture-expect: dtype-discipline
"""Seeded violation: hard-coded float dtypes outside repro.runtime."""

import numpy as np


def make(values):
    """Two findings: an np attribute literal and a string dtype."""
    widened = np.asarray(values, dtype=np.float64)
    narrowed = values.astype("float32")
    return widened, narrowed
