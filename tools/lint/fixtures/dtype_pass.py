# lint-fixture: path=src/repro/core/_fixture.py
"""Clean sibling: dtype flows through the runtime front door."""

import numpy as np

from repro import runtime


def make(values):
    """Selecting float64 via use_dtype is the sanctioned route."""
    with runtime.use_dtype(np.float64):
        return runtime.asarray(values)
