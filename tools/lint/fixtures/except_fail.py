# lint-fixture: path=src/repro/core/_fixture.py
# lint-fixture-expect: silent-except
"""Seeded violations: a bare except and a swallowed exception."""


def guarded(fn):
    """Finding: bare except catches SystemExit/KeyboardInterrupt too."""
    try:
        return fn()
    except:
        return None


def swallow(fn):
    """Finding: the handler discards the exception without a trace."""
    try:
        return fn()
    except ValueError:
        pass
