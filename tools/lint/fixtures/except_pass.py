# lint-fixture: path=src/repro/core/_fixture.py
"""Clean sibling: typed handlers that record and act."""

import contextlib


def guarded(fn, errors):
    """Recording and returning a sentinel is handling, not swallowing."""
    try:
        return fn()
    except ValueError as error:
        errors.append(str(error))
        return None


def best_effort_close(conn):
    """contextlib.suppress states the discard intent explicitly."""
    with contextlib.suppress(OSError):
        conn.close()
