# lint-fixture: path=src/repro/nn/_fixture.py
# lint-fixture-expect: import-layering
"""Seeded violation: the substrate layer reaching up into fleet/eval."""

from repro.fleet import service
import repro.eval.parallel


def misuse():
    """Keep the imports referenced so the fixture stays plausible code."""
    return service, repro.eval.parallel
