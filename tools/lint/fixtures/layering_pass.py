# lint-fixture: path=src/repro/nn/_fixture.py
"""Clean sibling: repro.nn importing strictly downward."""

from repro import runtime
from repro.nn import kernels


def use():
    """runtime and nn.kernels are both below repro.nn in the DAG."""
    return runtime.get_dtype(), kernels
