# lint-fixture: path=src/repro/eval/_fixture.py
# lint-fixture-expect: pool-picklability
"""Seeded violation: unpicklable callables at pool submission sites."""


def run(pool, items):
    """Two findings: a nested function and an inline lambda."""

    def local_fn(payload, item):
        return item

    first = pool.map(local_fn, items)
    second = pool.map_outcomes(lambda payload, item: item, items)
    return first, second
