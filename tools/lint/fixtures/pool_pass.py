# lint-fixture: path=src/repro/eval/_fixture.py
"""Clean sibling: a module-level worker function pickles by reference."""


def work(payload, item):
    """Module-level, so workers can unpickle it by qualified name."""
    return item


def run(pool, items):
    """Submission passes the module-level callable."""
    return pool.map(work, items)
