# lint-fixture: path=src/repro/eval/_queue_fixture.py
# lint-fixture-expect: bounded-queue
"""Seeded violations: unbounded in-process buffers in library code."""

import collections
import multiprocessing
import queue
from collections import deque
from queue import SimpleQueue


def build_buffers(mp_context):
    """Six findings: every way to construct a buffer with no hard bound."""
    a = queue.Queue()  # no maxsize at all
    b = queue.Queue(0)  # explicit maxsize=0 means infinite
    c = collections.deque()  # no maxlen
    d = deque([], None)  # positional maxlen=None means infinite
    e = SimpleQueue()  # cannot be bounded, ever
    f = mp_context.JoinableQueue()  # attribute construction, still unbounded
    g = multiprocessing.Queue(maxsize=0)  # keyword zero is still infinite
    return a, b, c, d, e, f, g
