# lint-fixture: path=src/repro/eval/_queue_fixture.py
"""Clean sibling: every buffer carries an explicit hard bound."""

import collections
import queue
from collections import deque


def build_buffers(mp_context, capacity):
    """Bounds may be literals or configuration values — just explicit."""
    a = queue.Queue(maxsize=64)
    b = queue.Queue(16)  # positional maxsize is a bound too
    c = collections.deque(maxlen=8)
    d = deque([1, 2, 3], 4)  # positional maxlen
    e = queue.PriorityQueue(maxsize=capacity)  # non-literal bound: a choice
    f = mp_context.JoinableQueue(capacity)
    return a, b, c, d, e, f
