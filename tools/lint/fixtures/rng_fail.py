# lint-fixture: path=src/repro/core/_fixture.py
# lint-fixture-expect: rng-discipline
"""Seeded violations: global RNG state, hidden seed, OS entropy."""

import numpy as np


def sample(n):
    """Four findings across the three rng-discipline families."""
    np.random.seed(0)
    hidden = np.random.default_rng(0)
    entropy = np.random.default_rng()
    return hidden, entropy, np.random.rand(n)
