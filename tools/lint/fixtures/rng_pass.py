# lint-fixture: path=src/repro/core/_fixture.py
"""Clean sibling: explicit Generator with a documented named fallback seed."""

import numpy as np

#: Documented fallback seed (the pattern the rule's message recommends).
DEFAULT_SEED = 0


def sample(size, rng=None):
    """A named-constant seed is visible at the call site, so it passes."""
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_SEED)
    return rng.normal(size=size)
