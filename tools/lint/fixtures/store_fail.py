# lint-fixture: path=src/repro/eval/_fixture.py
# lint-fixture-expect: store-discipline
"""Seeded violation: opening SQLite outside repro.fleet.store."""

import sqlite3


def open_db(path):
    """One finding: a raw connect bypasses the WAL/pragma/retry policy."""
    return sqlite3.connect(path)
