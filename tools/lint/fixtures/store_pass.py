# lint-fixture: path=src/repro/fleet/_fixture.py
"""Clean sibling: SQLite access through the store tier."""

from repro.fleet.store import DeviceStateStore


def open_db(path):
    """DeviceStateStore owns the connection and its pragmas."""
    return DeviceStateStore(path)
