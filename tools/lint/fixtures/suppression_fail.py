# lint-fixture: path=src/repro/core/_fixture.py
# lint-fixture-expect: suppression-hygiene, dtype-discipline
"""Seeded violation: a reasonless disable — which also fails to suppress."""

import numpy as np

SCALES = np.ones(4, dtype=np.float64)  # repro-lint: disable=dtype-discipline
