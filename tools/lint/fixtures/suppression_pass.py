# lint-fixture: path=src/repro/core/_fixture.py
"""Clean sibling: a reasoned suppression at a documented float64 site."""

import numpy as np

SCALES = np.ones(4, dtype=np.float64)  # repro-lint: disable=dtype-discipline -- fixture: scale arithmetic is float64 by the bit-identity contract
