"""The repo-native rule suite.

Importing this package registers every rule with the engine registry.  One
module per rule family; see ``docs/static_analysis.md`` for the catalog and
the how-to-add-a-rule checklist.
"""

from tools.lint.rules import (  # noqa: F401  (imported for registration side effect)
    docs,
    dtype,
    excepts,
    layering,
    pool,
    queues,
    rng,
    store,
)
