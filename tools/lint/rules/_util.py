"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an ``Attribute``/``Name`` chain as ``a.b.c``; None otherwise.

    Used to match call targets like ``np.random.shuffle`` or
    ``sqlite3.connect`` without caring how deeply they are nested.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def last_component(node: ast.AST) -> Optional[str]:
    """The final attribute/name of a call target (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_numeric_literal(node: ast.AST) -> bool:
    """Whether ``node`` is a bare int/float constant (a *hidden* seed)."""
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
        and not isinstance(node.value, bool)
