"""docstring-coverage + doc-links: the documentation gates, as lint rules.

These two rules absorb ``tools/check_docs.py`` (PR 5/6) into the one
analysis entry point:

* **docstring-coverage** — every *public* function, class and method in the
  configured packages (the pluggable conv-backend surface, the operational
  fleet surface, and the linter itself) must carry a docstring.  The check
  is purely AST-based, so it runs without importing the code — which also
  means inherited docstrings do **not** count: each defined method
  documents itself, matching the old import-based gate's behaviour on
  ``vars(cls)``.
* **doc-links** — every relative markdown link in ``README.md`` and
  ``docs/*.md`` must resolve to an existing file or directory.  External
  links (``http(s)://``, ``mailto:``) and pure in-page anchors are skipped;
  ``path#anchor`` is checked for the path part.

``tools/check_docs.py`` remains as a thin shim over these rules so existing
CI wiring and doc references keep working.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List

from tools.lint import config
from tools.lint.engine import FileContext, Finding, ProjectRule, Rule, register

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _skipped_decorator(node: ast.AST) -> bool:
    """Property setters/deleters and typing overloads need no own docstring."""
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Attribute) and decorator.attr in ("setter", "deleter"):
            return True
        if isinstance(decorator, ast.Name) and decorator.id == "overload":
            return True
    return False


@register
class DocstringCoverage(Rule):
    """Undocumented public API in the configured packages."""

    name = "docstring-coverage"
    description = (
        "public functions/classes/methods in repro.nn.kernels, repro.fleet "
        "and tools.lint must carry docstrings"
    )

    def applies(self, ctx: FileContext) -> bool:
        """Only the configured package path prefixes are in scope."""
        return ctx.rel_path.startswith(config.DOCSTRING_PATH_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Walk module-level defs and public-class methods."""
        findings: List[Finding] = []
        body = getattr(ctx.tree, "body", [])
        for node in body:
            if isinstance(node, _DEFS) and _is_public(node.name):
                self._require(ctx, node, node.name, findings)
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                self._require(ctx, node, node.name, findings)
                for method in node.body:
                    if (
                        isinstance(method, _DEFS)
                        and _is_public(method.name)
                        and not _skipped_decorator(method)
                    ):
                        self._require(
                            ctx, method, f"{node.name}.{method.name}", findings
                        )
        return findings

    def _require(self, ctx, node, qualname, findings) -> None:
        """Append a finding if ``node`` lacks a docstring."""
        if not ast.get_docstring(node):
            findings.append(ctx.finding(
                node, self.name, f"missing docstring: {qualname}"
            ))


@register
class DocLinks(ProjectRule):
    """Broken relative links in the markdown doc set."""

    name = "doc-links"
    description = "relative links in README.md and docs/*.md must resolve"

    def check_project(self, root: Path) -> Iterable[Finding]:
        """Scan the repo doc set once per lint invocation."""
        return self.check_files(config.markdown_files(), root)

    def check_files(self, files: Iterable[Path], root: Path) -> List[Finding]:
        """Check an explicit list of markdown files (selfcheck/tests hook)."""
        findings: List[Finding] = []
        for md_file in files:
            rel = md_file.relative_to(root).as_posix()
            if not md_file.exists():
                findings.append(Finding(rel, 1, 0, self.name, "file missing"))
                continue
            for lineno, line in enumerate(md_file.read_text().splitlines(), 1):
                for match in _LINK_RE.finditer(line):
                    target = match.group(1)
                    if _SCHEME_RE.match(target) or target.startswith("#"):
                        continue
                    path_part = target.split("#", 1)[0]
                    if not path_part:
                        continue
                    if not (md_file.parent / path_part).resolve().exists():
                        findings.append(Finding(
                            rel, lineno, match.start(), self.name,
                            f"broken link -> {target}",
                        ))
        return findings
