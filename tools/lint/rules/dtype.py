"""dtype-discipline: no hard-coded float compute dtypes outside the runtime.

PR 1 moved every dense computation onto the process-global compute dtype
(:mod:`repro.runtime`): float32 by default, float64 opt-in, with the whole
fast-path test pyramid pinned at float64.  One stray ``np.float64`` literal
re-introduces a dtype island that silently widens (or narrows) arrays mid
pipeline — exactly the class of bug the runtime knob exists to make
impossible.

Flagged:

* attribute literals ``np.float64`` / ``np.float32`` / ``np.float16``
  (also via ``numpy.``), except when passed directly to a dtype-selection
  sink (``runtime.use_dtype`` / ``set_dtype`` / ``resolve_dtype`` /
  ``np.dtype``) — selecting the compute dtype through the front door is the
  sanctioned use;
* ``dtype="float64"``-style string keywords, and ``.astype("float64")``.

Allowed: files in :data:`tools.lint.config.DTYPE_ALLOWLIST_FILES` (each
entry carries its reason) and individually suppressed sites — the
quantizer's float64 scale arithmetic, which is *part of the bit-identity
contract* and documented as such where it happens.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.lint import config
from tools.lint.engine import FileContext, Finding, Rule, register
from tools.lint.rules._util import last_component

_NUMPY_BASES = {"np", "numpy"}


def _sink_call(ctx: FileContext, node: ast.AST) -> bool:
    """Whether ``node`` is a direct argument of a dtype-selection call."""
    parent = ctx.parent(node)
    if isinstance(parent, ast.keyword):
        parent = ctx.parent(parent)
    if not isinstance(parent, ast.Call):
        return False
    return last_component(parent.func) in config.DTYPE_SINK_CALLEES


@register
class DtypeDiscipline(Rule):
    """Hard-coded float dtype literals outside ``repro.runtime``."""

    name = "dtype-discipline"
    description = (
        "float dtype literals belong to repro.runtime (or a documented "
        "allowlist/suppression site); use runtime.get_dtype()/asarray()"
    )

    def applies(self, ctx: FileContext) -> bool:
        """Skip the runtime module and the configured allowlist files."""
        return ctx.rel_path not in config.DTYPE_ALLOWLIST_FILES

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag float dtype attribute and string literals."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if (
                    node.attr in config.DTYPE_LITERAL_NAMES
                    and isinstance(node.value, ast.Name)
                    and node.value.id in _NUMPY_BASES
                    and not _sink_call(ctx, node)
                ):
                    findings.append(ctx.finding(
                        node, self.name,
                        f"hard-coded np.{node.attr}; route through "
                        "repro.runtime (get_dtype/asarray/zeros) or suppress "
                        "with the documented reason",
                    ))
            elif isinstance(node, ast.keyword):
                if (
                    node.arg == "dtype"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value in config.DTYPE_LITERAL_NAMES
                ):
                    findings.append(ctx.finding(
                        node.value, self.name,
                        f'hard-coded dtype="{node.value.value}"; route through '
                        "repro.runtime",
                    ))
            elif isinstance(node, ast.Call):
                if (
                    last_component(node.func) == "astype"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value in config.DTYPE_LITERAL_NAMES
                ):
                    findings.append(ctx.finding(
                        node, self.name,
                        f'.astype("{node.args[0].value}") hard-codes the compute '
                        "dtype; use runtime.get_dtype()",
                    ))
        return findings
