"""silent-except: no bare excepts, no swallowed exceptions.

A calibration round that fails must fail *loudly* — the fleet service's
whole retry/quarantine machinery exists because errors are recorded, acted
on and persisted, never discarded.  Two shapes are flagged everywhere:

* ``except:`` with no exception type — it catches ``SystemExit`` and
  ``KeyboardInterrupt`` too, turning Ctrl-C and worker shutdown into
  undefined states;
* any handler whose body is only ``pass``/``...`` — the exception vanishes
  without a trace.  Handle it, log it, re-raise it, or use
  ``contextlib.suppress`` to make the intent explicit.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.lint.engine import FileContext, Finding, Rule, register


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether a handler body does nothing but ``pass``/``...``."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register
class SilentExcept(Rule):
    """Bare excepts and exception-swallowing handlers."""

    name = "silent-except"
    description = (
        "no bare 'except:' and no handlers that silently swallow — record, "
        "re-raise or use contextlib.suppress"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag bare and pass-only exception handlers."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(ctx.finding(
                    node, self.name,
                    "bare 'except:' also catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                ))
            elif _swallows(node):
                findings.append(ctx.finding(
                    node, self.name,
                    "exception handler silently swallows; handle, record or "
                    "re-raise (contextlib.suppress if discarding is the point)",
                ))
        return findings
