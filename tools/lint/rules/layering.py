"""import-layering: the architecture's layer DAG, checked against real imports.

``docs/architecture.md`` promises that dependencies point downward —
``repro.nn`` can never grow a ``repro.fleet`` import, the conv-kernel
backends can never reach back into the layer API.  This rule turns that
promise into a machine-checked invariant: every import statement in
``src/repro`` (module-level *and* deferred/function-level) is resolved to
its layer package and checked against :data:`tools.lint.config.LAYERS`.

Same-layer imports between *different* packages are also findings
(``repro.models`` and ``repro.quantization`` are peers, not dependencies).
The only edges exempted are the documented circularity-breakers in
:data:`tools.lint.config.LAYERING_EXEMPTIONS`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from tools.lint import config
from tools.lint.engine import FileContext, Finding, Rule, register


def _relative_target(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    """Resolve a relative import to an absolute dotted module name."""
    if ctx.module is None:
        return None
    anchor = ctx.module.split(".")
    if not ctx.rel_path.endswith("__init__.py"):
        anchor = anchor[:-1]
    if node.level - 1 > 0:
        anchor = anchor[: len(anchor) - (node.level - 1)]
    if not anchor:
        return None
    return ".".join(anchor + (node.module.split(".") if node.module else []))


def _targets(ctx: FileContext, node: ast.AST) -> List[str]:
    """Every absolute module name an import statement touches."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:
            target = _relative_target(ctx, node)
            return [target] if target else []
        if node.module == "repro":
            # ``from repro import runtime`` imports submodules by name.
            return [f"repro.{alias.name}" for alias in node.names]
        return [node.module] if node.module else []
    return []


@register
class ImportLayering(Rule):
    """Imports must point strictly downward in the layer DAG."""

    name = "import-layering"
    description = (
        "repro packages may only import from strictly lower layers of the "
        "DAG in tools/lint/config.py (mirrored in docs/architecture.md)"
    )

    def applies(self, ctx: FileContext) -> bool:
        """Only modules inside a ranked ``repro`` layer package are checked."""
        return (
            ctx.package is not None
            and config.layer_rank(ctx.package) is not None
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Resolve every import and compare against the allowed-deps set."""
        findings: List[Finding] = []
        allowed = config.allowed_imports()[ctx.package]
        src_rank = config.layer_rank(ctx.package)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for module in _targets(ctx, node):
                target_pkg = config.package_of(module)
                if target_pkg is None or target_pkg == ctx.package:
                    continue
                if target_pkg == "repro":
                    continue  # the umbrella package defines no layer
                if target_pkg in allowed:
                    continue
                if (ctx.package, target_pkg) in config.LAYERING_EXEMPTIONS:
                    continue
                target_rank = config.layer_rank(target_pkg)
                relation = (
                    "an unranked package"
                    if target_rank is None
                    else "a same-layer peer"
                    if target_rank == src_rank
                    else f"layer {target_rank} from layer {src_rank}"
                )
                findings.append(ctx.finding(
                    node, self.name,
                    f"{ctx.package} imports {module} — {relation}; the layer "
                    "DAG (docs/architecture.md) only allows strictly "
                    "downward imports",
                ))
        return findings
