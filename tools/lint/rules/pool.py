"""pool-picklability: only module-level callables reach the worker pool.

``WorkerPool`` ships work to spawn-started processes, so everything it
receives — the payload at construction, the ``fn`` of every
``map``/``map_outcomes`` call — travels by pickle.  Pickle serialises
functions *by reference* (module + qualname): lambdas and functions defined
inside other functions unpickle as ``AttributeError`` at the worker, which
surfaces as an opaque pool failure long after the submission site.

This rule flags, at the submission site itself:

* ``lambda`` expressions passed to a pool constructor or submission method;
* names bound to a ``lambda`` anywhere in the module (a module-level
  ``f = lambda: …`` still has qualname ``<lambda>`` and does not pickle);
* names of functions *defined inside another function* passed to a
  submission site (their qualname contains ``<locals>``).

Keywords named in :data:`tools.lint.config.POOL_PARENT_SIDE_KEYWORDS`
(currently ``describe``) are exempt: they are labelling hooks consumed in
the parent process for error messages and never cross the pickle boundary.

The analysis is intra-module and name-based — a deliberately simple
approximation that catches the mistake where it is made.  Factories that
need configuration should be module-level callables taking arguments (see
``benchmarks/bench_config.py``'s spawn-safe ``method_factories``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from tools.lint import config
from tools.lint.engine import FileContext, Finding, Rule, register
from tools.lint.rules._util import last_component


def _collect_unpicklable_names(tree: ast.AST) -> Set[str]:
    """Names bound to lambdas anywhere, plus function names nested in defs."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(sub.name)
    return names


@register
class PoolPicklability(Rule):
    """Lambdas/nested functions at WorkerPool submission sites."""

    name = "pool-picklability"
    description = (
        "WorkerPool/ParallelEvaluator submissions must be module-level "
        "callables; lambdas and nested functions do not pickle by reference"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag unpicklable callables in pool constructor/submission args."""
        findings: List[Finding] = []
        bad_names = _collect_unpicklable_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = last_component(node.func)
            is_ctor = isinstance(node.func, ast.Name) and callee in config.POOL_CONSTRUCTORS
            is_submit = (
                isinstance(node.func, ast.Attribute)
                and callee in config.POOL_SUBMIT_METHODS
            )
            if not (is_ctor or is_submit):
                continue
            site = "constructor" if is_ctor else f".{callee}()"
            checked = list(node.args) + [
                kw.value
                for kw in node.keywords
                if kw.arg not in config.POOL_PARENT_SIDE_KEYWORDS
            ]
            for value in checked:
                if isinstance(value, ast.Lambda):
                    findings.append(ctx.finding(
                        value, self.name,
                        f"lambda passed to pool {site}; lambdas do not pickle "
                        "— use a module-level function",
                    ))
                elif isinstance(value, ast.Name) and value.id in bad_names:
                    findings.append(ctx.finding(
                        value, self.name,
                        f"{value.id!r} passed to pool {site} is a nested "
                        "function or lambda binding; workers unpickle "
                        "callables by reference, so it must be module-level",
                    ))
        return findings
