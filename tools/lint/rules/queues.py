"""bounded-queue: in-process buffers in library code must have a hard bound.

The gateway's backpressure story (PR 9) only works if *every* buffer between
ingestion and processing has an explicit capacity: an unbounded ``Queue`` or
``deque`` absorbs overload silently until memory pressure does the load
shedding, unobservably and at the worst possible moment.  In library code
(``src/``) this rule requires:

* ``queue.Queue`` / ``LifoQueue`` / ``PriorityQueue`` and
  ``multiprocessing``'s ``Queue`` / ``JoinableQueue``: an explicit ``maxsize``
  that is not ``0`` / ``None`` (both mean "infinite" to the stdlib).
* ``collections.deque``: an explicit ``maxlen`` that is not ``None``.
* ``SimpleQueue`` (either module): always a finding — it has no capacity
  parameter at all, so there is no way to construct it bounded.

A non-literal bound (``maxsize=config.queue_max``) is fine: the rule enforces
that a bound was *chosen*, not what it is.  Deliberately unbounded buffers
need a ``# repro-lint: disable=bounded-queue -- <why the depth is bounded
elsewhere>`` suppression, which is exactly the audit trail we want.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from tools.lint import config
from tools.lint.engine import FileContext, Finding, Rule, register
from tools.lint.rules._util import last_component

#: Constructor names matched for the ``maxsize`` requirement.  Matching by
#: final component (``Queue`` and ``mp_context.Queue`` alike) deliberately
#: over-approximates: a false positive on an unrelated ``Queue`` class is a
#: one-line reasoned suppression, an unbounded stdlib queue is an incident.
_MAXSIZE_NAMES = config.QUEUE_MAXSIZE_CONSTRUCTORS
_UNBOUNDABLE_NAMES = config.QUEUE_UNBOUNDABLE_CONSTRUCTORS


def _is_unbounded_literal(node: ast.AST) -> bool:
    """Whether an explicit capacity argument still means "no bound"."""
    if not isinstance(node, ast.Constant):
        return False
    return node.value is None or node.value == 0


def _capacity_argument(
    call: ast.Call, keyword: str, position: int
) -> Optional[ast.AST]:
    """The capacity expression of a constructor call, however it was passed."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


@register
class BoundedQueue(Rule):
    """Unbounded ``Queue``/``deque``/``SimpleQueue`` construction in src/."""

    name = "bounded-queue"
    description = (
        "queue.Queue/deque construction in library code must pass an "
        "explicit maxsize/maxlen bound; unbounded in-process buffers hide "
        "overload until memory pressure sheds the load for you"
    )

    def applies(self, ctx: FileContext) -> bool:
        """Library code only; experiment drivers may buffer freely."""
        return ctx.rel_path.startswith(config.LIBRARY_PATH_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag capacity-less (or explicitly infinite) buffer constructions."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = last_component(node.func)
            if callee in _UNBOUNDABLE_NAMES:
                findings.append(ctx.finding(
                    node, self.name,
                    f"{callee} cannot be bounded (no capacity parameter); "
                    "use a Queue with an explicit maxsize instead",
                ))
                continue
            if callee in _MAXSIZE_NAMES:
                capacity = _capacity_argument(node, "maxsize", 0)
                if capacity is None or _is_unbounded_literal(capacity):
                    findings.append(ctx.finding(
                        node, self.name,
                        f"{callee} without an explicit positive maxsize is an "
                        "unbounded buffer; pass a hard bound (0/None mean "
                        "infinite)",
                    ))
                continue
            if callee == "deque":
                capacity = _capacity_argument(node, "maxlen", 1)
                if capacity is None or _is_unbounded_literal(capacity):
                    findings.append(ctx.finding(
                        node, self.name,
                        "deque without an explicit maxlen is an unbounded "
                        "buffer; pass a hard bound",
                    ))
        return findings
