"""rng-discipline: seeded, explicit randomness everywhere.

The reproduction's determinism story (PR 2/3: parallel == serial, fleet ==
per-device, golden-pinned at float64) holds because every stochastic
component draws from an explicitly passed ``numpy.random.Generator`` rooted
in a ``SeedSequence``.  This rule polices the three ways that story erodes:

* **global-state randomness** — ``np.random.<fn>`` legacy calls
  (``seed``/``shuffle``/``randint``/…) share one hidden process-wide stream;
  two call sites silently couple, and worker processes diverge from serial
  runs.  Flagged everywhere, including benchmarks and tools.
* **hidden seeds** — ``np.random.default_rng(0)`` buried in library code
  looks deterministic but is invisible at the call site; callers cannot tell
  two components share a stream.  Use a documented module-level constant
  (e.g. ``repro.utils.seeding.DEFAULT_SEED``) or require the caller to pass
  an rng.  ``default_rng()`` with *no* seed is worse — OS entropy — and is
  flagged too.  Library code (``src/``) only; benchmarks and tools are
  deliberate fixed-seed experiment drivers.
* **wall-clock / stdlib entropy** — ``random.*``, ``time.time()``,
  ``datetime.now()`` in library code make behaviour a function of when (or
  where) it ran.  ``time.perf_counter`` is fine: timing *measurement* is not
  a numerics input.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.lint import config
from tools.lint.engine import FileContext, Finding, Rule, register
from tools.lint.rules._util import dotted_name, is_numeric_literal

_CLOCK_CALLS = {"time.time"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}


def _is_library(ctx: FileContext) -> bool:
    return ctx.rel_path.startswith(config.LIBRARY_PATH_PREFIXES)


@register
class RngDiscipline(Rule):
    """Global-state RNG, hidden literal seeds and wall-clock reads."""

    name = "rng-discipline"
    description = (
        "no np.random global-state calls anywhere; no hidden literal seeds, "
        "OS-entropy generators, random.*, time.time() or datetime.now() in "
        "library code"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag the three families of determinism hazards."""
        findings: List[Finding] = []
        library = _is_library(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if library and self._imports_stdlib_random(node):
                    findings.append(ctx.finding(
                        node, self.name,
                        "stdlib random in library code is a determinism "
                        "hazard; accept a numpy Generator instead",
                    ))
                continue
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func)
            if target is None:
                continue
            base, _, fn = target.rpartition(".")
            if base in ("np.random", "numpy.random"):
                if fn in config.NP_RANDOM_LEGACY:
                    findings.append(ctx.finding(
                        node, self.name,
                        f"{target}() uses numpy's global RNG state; pass an "
                        "explicit numpy.random.Generator",
                    ))
                elif fn == "default_rng" and library:
                    if not node.args and not node.keywords:
                        findings.append(ctx.finding(
                            node, self.name,
                            "default_rng() with no seed draws OS entropy; "
                            "library code must take a seed or Generator",
                        ))
                    elif node.args and is_numeric_literal(node.args[0]):
                        findings.append(ctx.finding(
                            node, self.name,
                            f"hidden literal seed default_rng({node.args[0].value!r}) "
                            "in library code; use a documented named constant "
                            "(e.g. repro.utils.seeding.DEFAULT_SEED) or require "
                            "callers to pass an rng",
                        ))
                elif fn == "Generator" and library and self._has_literal_seed(node):
                    findings.append(ctx.finding(
                        node, self.name,
                        "Generator constructed with a literal seed in library "
                        "code; use a documented named constant",
                    ))
            elif library and target in _CLOCK_CALLS:
                findings.append(ctx.finding(
                    node, self.name,
                    "time.time() in library code ties behaviour to the wall "
                    "clock; use time.perf_counter for durations or pass "
                    "timestamps in",
                ))
            elif library and fn in _DATETIME_ATTRS and (
                base.endswith("datetime") or base.endswith("date")
            ):
                findings.append(ctx.finding(
                    node, self.name,
                    f"{target}() reads the wall clock in library code; pass "
                    "timestamps in (or suppress with a reason at pure "
                    "audit-metadata sites)",
                ))
        return findings

    @staticmethod
    def _imports_stdlib_random(node: ast.AST) -> bool:
        """Whether an import statement pulls in the stdlib ``random`` module."""
        if isinstance(node, ast.Import):
            return any(alias.name == "random" for alias in node.names)
        if isinstance(node, ast.ImportFrom):
            return node.level == 0 and node.module == "random"
        return False

    @staticmethod
    def _has_literal_seed(node: ast.Call) -> bool:
        """Whether any (possibly nested) argument is a bare numeric literal."""
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if is_numeric_literal(sub):
                    return True
        return False
