"""store-discipline: SQLite access is confined to the audited store modules.

The durability story of the fleet service (PR 6) and the experiment store
(PR 8) rests on every connection sharing one configuration: WAL journaling,
``synchronous=NORMAL``, ``busy_timeout``, foreign keys, and the bounded
write retry that turns injected/transient ``OperationalError`` into recovery
instead of data loss.  A further ``sqlite3.connect`` call site is another
place those pragmas can silently be wrong.  Everything goes through
:class:`repro.fleet.store.DeviceStateStore` (device state) or
:class:`repro.results.store.ResultsStore` (experiment results).

Importing :mod:`sqlite3` elsewhere stays legal — the fault harness raises
``sqlite3.OperationalError`` to exercise the retry path — only *opening
connections* is confined.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.lint import config
from tools.lint.engine import FileContext, Finding, Rule, register
from tools.lint.rules._util import dotted_name


@register
class StoreDiscipline(Rule):
    """``sqlite3.connect`` outside the store module."""

    name = "store-discipline"
    description = (
        "sqlite3.connect is confined to the audited store modules; go "
        "through DeviceStateStore or ResultsStore so WAL/pragma/retry "
        "policy stays in one place"
    )

    def applies(self, ctx: FileContext) -> bool:
        """Every file except the store modules themselves."""
        return ctx.rel_path not in config.STORE_ALLOWED_FILES

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag direct connection-opening calls."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "sqlite3.connect"
            ):
                findings.append(ctx.finding(
                    node, self.name,
                    "sqlite3.connect outside the audited store modules; use "
                    "DeviceStateStore or ResultsStore (WAL, pragmas and "
                    "bounded write retry live there)",
                ))
        return findings
