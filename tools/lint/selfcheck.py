"""Verify-the-gate: prove each rule catches its seeded violation.

A lint gate that silently stopped finding anything is worse than no gate,
so CI runs ``python -m tools.lint --selfcheck`` next to the real lint pass.
The selfcheck lints the fixture corpus in ``tools/lint/fixtures/`` — one
``*_fail.py`` file seeded with a violation per rule category, and one
``*_pass.py`` sibling that must come back clean — and exits non-zero if any
rule misses its seeded violation, fires on its clean sibling, or fires
off-category.

Each fixture declares, in header comments, the repo-relative path it should
be linted *as* (so library-scoped rules see a library path) and the exact
rule set it expects::

    # lint-fixture: path=src/repro/core/_fixture.py
    # lint-fixture-expect: rng-discipline

No ``lint-fixture-expect`` line means the fixture must produce zero
findings.  The pytest suite (``tests/lint/``) runs the same corpus through
:func:`iter_fixture_cases`, so the gate is verified both in the lint job
and in the test job.
"""

from __future__ import annotations

import re
import tempfile
from pathlib import Path
from typing import Iterator, List, Set, Tuple

from tools.lint.engine import lint_file
from tools.lint.rules.docs import DocLinks

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"

_PATH_RE = re.compile(r"^#\s*lint-fixture:\s*path=(?P<path>\S+)\s*$", re.MULTILINE)
_EXPECT_RE = re.compile(r"^#\s*lint-fixture-expect:\s*(?P<rules>.+?)\s*$", re.MULTILINE)


def iter_fixture_cases() -> Iterator[Tuple[Path, str, Set[str]]]:
    """Yield ``(fixture, pretend_rel_path, expected_rule_set)`` triples."""
    for fixture in sorted(FIXTURES_DIR.glob("*.py")):
        source = fixture.read_text()
        path_match = _PATH_RE.search(source)
        if path_match is None:
            raise ValueError(f"{fixture.name}: missing '# lint-fixture: path=…' header")
        expect_match = _EXPECT_RE.search(source)
        expected: Set[str] = set()
        if expect_match is not None:
            expected = {r.strip() for r in expect_match.group("rules").split(",") if r.strip()}
        yield fixture, path_match.group("path"), expected


def check_fixture(fixture: Path, rel_path: str, expected: Set[str]) -> List[str]:
    """Lint one fixture; return human-readable mismatch descriptions."""
    findings = lint_file(fixture, rel_path=rel_path)
    found = {finding.rule for finding in findings}
    problems: List[str] = []
    for rule in sorted(expected - found):
        problems.append(
            f"{fixture.name}: rule {rule!r} MISSED its seeded violation — the gate is broken"
        )
    for rule in sorted(found - expected):
        culprits = "; ".join(f.format() for f in findings if f.rule == rule)
        problems.append(
            f"{fixture.name}: unexpected {rule!r} finding(s): {culprits}"
        )
    return problems


def check_doc_links_gate() -> List[str]:
    """Prove the doc-links rule still detects a broken relative link."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        bad = root / "BROKEN.md"
        bad.write_text("see [missing](does/not/exist.md) for details\n")
        findings = DocLinks().check_files([bad], root)
    if not findings:
        return ["doc-links: MISSED a seeded broken link — the gate is broken"]
    return []


def run_selfcheck() -> int:
    """Run the full selfcheck; print a verdict and return the exit status."""
    problems: List[str] = []
    cases = 0
    for fixture, rel_path, expected in iter_fixture_cases():
        cases += 1
        problems.extend(check_fixture(fixture, rel_path, expected))
    problems.extend(check_doc_links_gate())
    if problems:
        print(f"repro-lint selfcheck FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"repro-lint selfcheck ok: {cases} fixture(s) + doc-links probe — "
        "every rule catches its seeded violation and stays quiet on the "
        "clean sibling"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(run_selfcheck())
