"""Perf-trajectory and regression tooling over the unified experiment store.

The store (``BENCH_perf.sqlite``, written through
:class:`repro.results.ResultsWriter` by every benchmark merge site) replaces
the hand-copied trajectory table in ``docs/performance.md`` and turns trend
regressions into a CI query.  This tool is the operator surface:

    python -m tools.perf_report trajectory        # print the markdown table
    python -m tools.perf_report write-docs        # refresh it in docs/performance.md
    python -m tools.perf_report check-docs        # CI: docs table == store-emitted
    python -m tools.perf_report check-regression  # CI: latest vs trailing median
    python -m tools.perf_report selfcheck         # CI: prove the gate bites
    python -m tools.perf_report ingest-legacy     # seed the store from the JSON silos
    python -m tools.perf_report verify-migration  # CI: JSON -> rows -> JSON round-trip
    python -m tools.perf_report label --label "PR 9" --lever "..."  # annotate latest runs

``check-regression`` fails (exit 1) when any gated benchmark's latest
full-run value drops below ``tolerance x`` the trailing median of its last
``window`` recorded rows — see :func:`repro.results.check_regression`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.results import (  # noqa: E402
    ResultsStore,
    check_regression,
    export_report,
    golden_digest_items,
    ingest_golden_digests,
    ingest_report,
)

STORE_PATH = REPO_ROOT / "BENCH_perf.sqlite"
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "fixtures" / "golden.json"
PERFORMANCE_MD = REPO_ROOT / "docs" / "performance.md"

TRAJECTORY_BEGIN = "<!-- trajectory:begin (emitted by `python -m tools.perf_report write-docs`; do not edit by hand) -->"
TRAJECTORY_END = "<!-- trajectory:end -->"

#: Benchmarks the regression gate covers, with their headline metric.
#: ``parallel_eval`` and ``scenarios`` (1-core hosts record overhead by
#: design) and ``fleet_service`` (records durability overhead, not
#: speedup) are deliberately not gated; their trends are still recorded
#: and queryable.
GATED_BENCHMARKS: Dict[str, str] = {
    "edge_calibration": "speedup",
    "qat": "speedup",
    "qat_fused": "speedup",
    "conv_kernels": "speedup",
    "fleet_calibration": "speedup",
}

#: Metric shown in the trajectory table per benchmark (default: speedup).
#: ``fleet_gateway``, like ``fleet_service``, records an overhead ratio and
#: is therefore recorded-but-not-gated.
HEADLINE_METRICS: Dict[str, str] = {
    "fleet_service": "durability_overhead",
    "fleet_gateway": "gateway_overhead",
}

#: One-time seed of the pre-store era, transcribed from docs/performance.md
#: and CHANGES.md: (label, benchmark, metric, value, lever).  Timestamps are
#: synthetic ordering keys (the JSON silos never recorded real ones); the
#: values are the numbers each PR actually reported.
LEGACY_TRAJECTORY: List[Tuple[str, str, str, float, str]] = [
    ("PR 1", "edge_calibration", "speedup", 1.9,
     "float32 compute + fused BF inference + incremental quantized-state sync + bincount col2im"),
    ("PR 1", "qat", "speedup", 1.45, "float32 vs float64 QAT compute"),
    ("PR 2", "parallel_eval", "speedup", 0.55,
     "sharded stream evaluation (1-core host: records overhead, not scaling)"),
    ("PR 3", "fleet_calibration", "speedup", 1.12,
     "batched multi-device fleet BF calibration (6 forwards vs 48 on 8 devices)"),
    ("PR 4", "qat_fused", "speedup", 1.57,
     "fused QAT engine: flat arena + segmented quantization + lazy codes"),
    ("PR 5", "conv_kernels", "speedup", 1.51,
     "strided conv kernels: as_strided im2col + fused blocked tap-loop col2im"),
    ("PR 6", "fleet_service", "durability_overhead", 1.152,
     "durable fleet service: crash-safe store + retry/backoff + dedupe (overhead, not speedup)"),
]

PR7_LEVER = (
    "repo-native invariant linter + strict-typing wave (perf-neutral; full re-measurement)"
)


def _legacy_timestamp(index: int) -> str:
    """Synthetic, strictly increasing timestamps for the legacy seed rows."""
    return f"2026-07-{index + 1:02d}T00:00:00+00:00"


# --------------------------------------------------------------------------
# trajectory table
# --------------------------------------------------------------------------


def trajectory_rows(store: ResultsStore) -> List[Tuple[str, str, str, float, str]]:
    """(label, benchmark, metric, value, lever) for every labeled run."""
    rows: List[Tuple[str, str, str, float, str]] = []
    for record in store.runs():
        if not record.label or record.kind not in ("entry", "trajectory"):
            continue
        metrics = store.run_metrics(record.run_id)
        metric = HEADLINE_METRICS.get(record.benchmark, "speedup")
        value = metrics.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        rows.append((record.label, record.benchmark, metric, float(value), record.lever))
    return rows


def trajectory_markdown(store: ResultsStore) -> str:
    """The docs trajectory table, emitted from store rows."""
    lines = [
        "| PR | Entry | Headline | Lever |",
        "|---|---|---|---|",
    ]
    for label, benchmark, metric, value, lever in trajectory_rows(store):
        lines.append(f"| {label} | `{benchmark}` | {value:g}x {metric} | {lever} |")
    return "\n".join(lines)


def _split_docs(text: str) -> Tuple[str, str, str]:
    """Split performance.md into (before, table, after) around the markers."""
    try:
        head, rest = text.split(TRAJECTORY_BEGIN, 1)
        table, tail = rest.split(TRAJECTORY_END, 1)
    except ValueError as error:
        raise SystemExit(
            f"{PERFORMANCE_MD} is missing the trajectory markers "
            f"({TRAJECTORY_BEGIN!r} … {TRAJECTORY_END!r}): {error}"
        ) from error
    return head, table, tail


def cmd_trajectory(store_path: Path) -> int:
    """Print the markdown trajectory table."""
    with ResultsStore(store_path) as store:
        print(trajectory_markdown(store))
    return 0


def cmd_write_docs(store_path: Path) -> int:
    """Rewrite the trajectory block in docs/performance.md from the store."""
    with ResultsStore(store_path) as store:
        table = trajectory_markdown(store)
    text = PERFORMANCE_MD.read_text()
    head, _, tail = _split_docs(text)
    PERFORMANCE_MD.write_text(
        head + TRAJECTORY_BEGIN + "\n" + table + "\n" + TRAJECTORY_END + tail
    )
    print(f"updated trajectory table in {PERFORMANCE_MD}")
    return 0


def cmd_check_docs(store_path: Path) -> int:
    """Fail if the docs trajectory table drifted from the store."""
    with ResultsStore(store_path) as store:
        expected = trajectory_markdown(store)
    _, table, _ = _split_docs(PERFORMANCE_MD.read_text())
    if table.strip() != expected.strip():
        print("docs/performance.md trajectory table is stale; regenerate with:")
        print("  PYTHONPATH=src python -m tools.perf_report write-docs")
        return 1
    print("docs trajectory table matches the store")
    return 0


# --------------------------------------------------------------------------
# regression gate
# --------------------------------------------------------------------------


def cmd_check_regression(
    store_path: Path,
    benchmarks: Optional[Sequence[str]],
    window: int,
    tolerance: float,
) -> int:
    """Run the trend gate over the gated benchmarks; exit 1 on regression."""
    names = list(benchmarks) if benchmarks else list(GATED_BENCHMARKS)
    failed = False
    with ResultsStore(store_path) as store:
        for name in names:
            metric = GATED_BENCHMARKS.get(name, HEADLINE_METRICS.get(name, "speedup"))
            verdict = check_regression(
                store, name, metric, window=window, tolerance=tolerance
            )
            print(verdict.describe())
            failed = failed or not verdict.ok
    if failed:
        print("\nregression gate FAILED — latest full-run value fell below the "
              "trailing median (see rows above)")
        return 1
    print("\nregression gate ok")
    return 0


def cmd_selfcheck() -> int:
    """Prove the gate bites: healthy trajectory passes, slowdown fails."""
    problems: List[str] = []
    with ResultsStore() as store:
        for index, value in enumerate([1.50, 1.62, 1.55, 1.58]):
            store.record_run(
                "healthy", {"speedup": value},
                timestamp=_legacy_timestamp(index), mode="full",
            )
        verdict = check_regression(store, "healthy")
        if not verdict.ok:
            problems.append(f"healthy trajectory flagged: {verdict.describe()}")
        store.record_run(
            "healthy", {"speedup": 0.70},
            timestamp=_legacy_timestamp(9), mode="full",
        )
        verdict = check_regression(store, "healthy")
        if verdict.ok:
            problems.append(f"injected slowdown NOT flagged: {verdict.describe()}")
        verdict = check_regression(store, "unrecorded")
        if not verdict.ok:
            problems.append(f"empty trajectory should pass vacuously: {verdict.describe()}")
        smoke_poison = ResultsStore()
        smoke_poison.record_run(
            "bench", {"speedup": 1.5}, timestamp=_legacy_timestamp(0), mode="full"
        )
        smoke_poison.record_run(
            "bench", {"speedup": 0.1}, timestamp=_legacy_timestamp(1), mode="smoke"
        )
        smoke_poison.record_run(
            "bench", {"speedup": 1.5}, timestamp=_legacy_timestamp(2), mode="full"
        )
        verdict = check_regression(smoke_poison, "bench")
        if not verdict.ok or len(verdict.values) != 2:
            problems.append("smoke rows leaked into the full-mode trend")
        smoke_poison.close()
    if problems:
        print("regression-gate selfcheck FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("regression-gate selfcheck ok: pass on healthy trajectory, fail on "
          "injected slowdown, smoke rows excluded")
    return 0


# --------------------------------------------------------------------------
# migration
# --------------------------------------------------------------------------


def seed_legacy(store: ResultsStore) -> None:
    """Seed the pre-store history + the committed JSON silos (idempotent)."""
    for index, (label, benchmark, metric, value, lever) in enumerate(LEGACY_TRAJECTORY):
        store.record_run(
            benchmark, {metric: value},
            kind="trajectory", host="legacy", git_sha="legacy",
            timestamp=_legacy_timestamp(index), mode="full",
            label=label, lever=lever,
        )
    report = json.loads(JSON_PATH.read_text())
    ingest_report(
        store, report, host="legacy", git_sha="legacy",
        timestamp=_legacy_timestamp(len(LEGACY_TRAJECTORY)),
        label="PR 7", lever=PR7_LEVER,
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    ingest_golden_digests(store, golden, repin=False)


def cmd_ingest_legacy(store_path: Path) -> int:
    """Build/refresh the committed store from the legacy JSON silos."""
    with ResultsStore(store_path) as store:
        seed_legacy(store)
        counts = store.counts()
    print(f"seeded {store_path}: {counts}")
    return 0


def cmd_verify_migration(store_path: Path) -> int:
    """CI check: JSON silos -> rows -> JSON is lossless; pins match golden."""
    problems: List[str] = []
    report = json.loads(JSON_PATH.read_text())
    golden = json.loads(GOLDEN_PATH.read_text())
    with ResultsStore() as fresh:
        ingest_report(fresh, report, timestamp="2026-01-01T00:00:00+00:00")
        exported = export_report(fresh)
        if exported != report:
            problems.append("re-exported BENCH_perf.json differs from the ingested input")
        entries = sum(
            1
            for key, value in report.items()
            if key != "config" and isinstance(value, dict)
        )
        runs = fresh.counts()["runs"]
        expected_runs = entries + 1  # per-entry runs + the report-scalars run
        if runs != expected_runs:
            problems.append(f"expected {expected_runs} runs for {entries} entries, got {runs}")
        pinned = ingest_golden_digests(fresh, golden)
        if fresh.pinned_digests() != pinned:
            problems.append("pinned golden digests do not round-trip")
    if store_path.exists():
        with ResultsStore(store_path) as committed:
            expected_pins = golden_digest_items(golden)
            actual = {
                name: digest
                for name, digest in committed.pinned_digests(kind="golden").items()
            }
            if actual != expected_pins:
                problems.append(
                    "committed store's pinned golden digests drifted from "
                    "tests/golden/fixtures/golden.json — regenerate via "
                    "tests/golden/generate_fixtures.py"
                )
    else:
        problems.append(f"committed store {store_path} is missing (run ingest-legacy)")
    if problems:
        print("migration verification FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("migration verification ok: JSON -> rows -> JSON lossless, "
          f"golden pins consistent ({len(golden_digest_items(golden))} digests)")
    return 0


def cmd_prune(store_path: Path, keep: int) -> int:
    """Prune old unprotected runs, keeping the newest ``keep`` per benchmark."""
    before = store_path.stat().st_size if store_path.exists() else 0
    with ResultsStore(store_path) as store:
        stats = store.prune(keep)
    after = store_path.stat().st_size if store_path.exists() else 0
    print(
        f"pruned {stats.runs_deleted} run(s) (+{stats.digests_deleted} provenance "
        f"digest row(s)); kept {stats.runs_kept}, protected {stats.runs_protected} "
        f"(labeled/pinned); {before} -> {after} bytes on disk"
    )
    return 0


def cmd_label(
    store_path: Path, label: str, lever: str, benchmarks: Optional[Sequence[str]]
) -> int:
    """Stamp a PR label + lever onto the latest full run of each benchmark."""
    if not label:
        raise SystemExit("--label is required")
    names = list(benchmarks) if benchmarks else None
    stamped = 0
    with ResultsStore(store_path) as store:
        targets = names if names is not None else store.benchmarks(kind="entry")
        for name in targets:
            runs = [r for r in store.runs(name, kind="entry") if r.mode != "smoke"]
            if not runs:
                continue
            store.set_annotations(runs[-1].run_id, label=label, lever=lever)
            stamped += 1
    print(f"labeled latest run of {stamped} benchmark(s) as {label!r}")
    return 0


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m tools.perf_report``."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "command", nargs="?", default="trajectory",
        choices=(
            "trajectory", "write-docs", "check-docs", "check-regression",
            "selfcheck", "ingest-legacy", "verify-migration", "label", "prune",
        ),
    )
    parser.add_argument("--store", type=Path, default=STORE_PATH,
                        help=f"experiment store path (default {STORE_PATH})")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict check-regression/label to these entries")
    parser.add_argument("--window", type=int, default=5,
                        help="trailing rows feeding the regression median")
    parser.add_argument("--tolerance", type=float, default=0.9,
                        help="latest must reach tolerance * trailing median")
    parser.add_argument("--label", default="", help="PR label for the label command")
    parser.add_argument("--lever", default="", help="lever text for the label command")
    parser.add_argument("--keep", type=int, default=10,
                        help="runs kept per benchmark by the prune command")
    args = parser.parse_args(argv)

    if args.command == "trajectory":
        return cmd_trajectory(args.store)
    if args.command == "write-docs":
        return cmd_write_docs(args.store)
    if args.command == "check-docs":
        return cmd_check_docs(args.store)
    if args.command == "check-regression":
        return cmd_check_regression(args.store, args.benchmarks, args.window, args.tolerance)
    if args.command == "selfcheck":
        return cmd_selfcheck()
    if args.command == "ingest-legacy":
        return cmd_ingest_legacy(args.store)
    if args.command == "verify-migration":
        return cmd_verify_migration(args.store)
    if args.command == "prune":
        return cmd_prune(args.store, args.keep)
    return cmd_label(args.store, args.label, args.lever, args.benchmarks)


if __name__ == "__main__":
    raise SystemExit(main())
